"""Model registry: the seven methods the benchmark frame compares.

Six baselines (five strongly supervised seq2seq NILM models + one weakly
supervised MIL model) plus CamAL. Each entry records the supervision
regime — which determines both the training recipe and the label
accounting used in Fig. 3 / the 5200× claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .baselines.bigru import BiGRUSeq2Seq
from .baselines.mil import MILPoolingDetector
from .baselines.seq2seq import DAENILM, Seq2PointCNN, Seq2SeqCNN
from .baselines.unet import UNetNILM
from .transapp import TransAppDetector

__all__ = [
    "ModelSpec",
    "BASELINES",
    "EXTRA_BASELINES",
    "list_baselines",
    "get_baseline_spec",
]


@dataclass(frozen=True)
class ModelSpec:
    """A benchmarkable method.

    Attributes
    ----------
    name:
        Registry key.
    supervision:
        ``"strong"`` (one label per timestep) or ``"weak"`` (one per
        window) — drives the label-budget accounting.
    factory:
        ``factory(rng) -> model``; models expose ``predict_status`` for
        localization.
    display_name:
        Label used in reports and the app.
    trainer:
        Training recipe: ``"seq2seq"`` (per-timestep BCE on strong
        labels), ``"mil"`` (window BCE through the pooling logit), or
        ``"classifier"`` (class-weighted cross entropy on weak labels).
    """

    name: str
    supervision: str
    factory: Callable[[np.random.Generator], object]
    display_name: str
    trainer: str = ""

    def __post_init__(self):
        if self.supervision not in ("weak", "strong"):
            raise ValueError(f"unknown supervision {self.supervision!r}")
        trainer = self.trainer or (
            "seq2seq" if self.supervision == "strong" else "mil"
        )
        object.__setattr__(self, "trainer", trainer)
        if self.trainer not in ("seq2seq", "mil", "classifier"):
            raise ValueError(f"unknown trainer {self.trainer!r}")
        if self.supervision == "strong" and self.trainer != "seq2seq":
            raise ValueError("strong supervision implies the seq2seq trainer")


BASELINES: dict[str, ModelSpec] = {
    "seq2seq_cnn": ModelSpec(
        name="seq2seq_cnn",
        supervision="strong",
        factory=lambda rng: Seq2SeqCNN(rng=rng),
        display_name="Seq2Seq CNN",
    ),
    "seq2point": ModelSpec(
        name="seq2point",
        supervision="strong",
        factory=lambda rng: Seq2PointCNN(rng=rng),
        display_name="Seq2Point",
    ),
    "dae": ModelSpec(
        name="dae",
        supervision="strong",
        factory=lambda rng: DAENILM(rng=rng),
        display_name="DAE",
    ),
    "unet": ModelSpec(
        name="unet",
        supervision="strong",
        factory=lambda rng: UNetNILM(rng=rng),
        display_name="UNet-NILM",
    ),
    "bigru": ModelSpec(
        name="bigru",
        supervision="strong",
        factory=lambda rng: BiGRUSeq2Seq(rng=rng),
        display_name="BiGRU",
    ),
    "mil": ModelSpec(
        name="mil",
        supervision="weak",
        factory=lambda rng: MILPoolingDetector(rng=rng),
        display_name="MIL (weak)",
    ),
}


#: Optional extra methods beyond the paper's six baselines. "transapp"
#: is a compact rendition of the authors' prior transformer detector
#: (PVLDB 2023) with the same weak supervision budget as CamAL.
EXTRA_BASELINES: dict[str, ModelSpec] = {
    "transapp": ModelSpec(
        name="transapp",
        supervision="weak",
        factory=lambda rng: TransAppDetector(rng=rng),
        display_name="TransApp (weak)",
        trainer="classifier",
    ),
}


def list_baselines(include_extras: bool = False) -> list[str]:
    """Names of the six baselines (plus extras when requested)."""
    names = list(BASELINES)
    if include_extras:
        names.extend(EXTRA_BASELINES)
    return names


def get_baseline_spec(name: str) -> ModelSpec:
    """Look up a baseline spec by name, with a helpful error."""
    if name in BASELINES:
        return BASELINES[name]
    if name in EXTRA_BASELINES:
        return EXTRA_BASELINES[name]
    available = ", ".join([*BASELINES, *EXTRA_BASELINES])
    raise KeyError(f"unknown baseline {name!r}; available: {available}")
