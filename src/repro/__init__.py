"""Reproduction of DeviceScope / CamAL (Petralia et al., ICDE 2025).

Weakly supervised appliance detection and localization in aggregate smart
meter electricity consumption series.

Subpackages
-----------
``repro.nn``
    From-scratch numpy deep-learning framework (substrate).
``repro.datasets``
    Synthetic smart-meter data generator emulating UK-DALE / REFIT / IDEAL.
``repro.models``
    TSC ResNet ensemble and the six NILM baselines.
``repro.core``
    CamAL — the paper's contribution: CAM-based appliance localization.
``repro.eval``
    Metrics, benchmark runner, and the label-efficiency sweep (Fig. 3).
``repro.app``
    The DeviceScope application layer (playground + benchmark frames,
    HTML rendering, CLI).
"""

__version__ = "1.0.0"
