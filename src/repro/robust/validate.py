"""Input validation: classify defects, repair, degrade, or reject.

Real smart-meter feeds are messy — NaN dropouts, negative readings from
CT-clamp noise, truncated windows. The validators here implement the
repair-vs-degrade-vs-reject policy documented in DESIGN.md §8:

* **repair** — defects with an unambiguous fix are fixed in place on a
  copy: ±inf → NaN, negative power clipped to 0, NaN runs up to
  ``max_gap`` samples linearly interpolated (edge runs hold the nearest
  finite value).
* **degrade** — defects that cannot be repaired but leave the input
  partially usable stay in the output (long NaN gaps in a series;
  windows whose gaps exceed the repair budget). Callers skip the model
  for degraded windows and surface the state instead of a traceback.
* **reject** — inputs with no usable signal (wrong shape/dtype, all
  NaN, too short) produce ``verdict == REJECTED`` and a ``None`` output;
  :func:`ensure_series` / :func:`ensure_window` turn that into a typed
  error for callers that prefer raising.

Every validation outcome is counted through :mod:`repro.obs` (counters
``robust.validation_verdicts_total``, ``robust.defects_total``,
``robust.repairs_total``) whenever observability is enabled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from .errors import SeriesRejected, WindowRejected

__all__ = [
    "Verdict",
    "Defect",
    "ValidationReport",
    "validate_series",
    "validate_window",
    "ensure_series",
    "ensure_window",
    "nan_runs",
]

#: Default repair budget: NaN runs up to this many samples are
#: interpolated (5 min at the paper's 1-min frequency).
DEFAULT_MAX_GAP = 5

#: Windows with more than this fraction of NaN are degraded outright —
#: interpolating a third of a window would hallucinate consumption.
DEFAULT_MAX_NAN_FRACTION = 0.1


class Verdict(enum.Enum):
    """Validation outcome, ordered by severity."""

    OK = "ok"
    REPAIRED = "repaired"
    DEGRADED = "degraded"
    REJECTED = "rejected"


@dataclass(frozen=True)
class Defect:
    """One class of problem found in an input.

    ``repaired`` tells whether the defect was fixed in the returned
    array; ``count`` is the number of affected samples (or runs, for
    gap defects).
    """

    kind: str
    count: int = 1
    repaired: bool = False
    detail: str = ""


@dataclass
class ValidationReport:
    """The verdict plus the defect inventory behind it."""

    verdict: Verdict
    defects: tuple[Defect, ...] = ()
    name: str = "series"

    @property
    def ok(self) -> bool:
        return self.verdict is Verdict.OK

    @property
    def usable(self) -> bool:
        """Safe to feed the model as-is (clean or fully repaired)."""
        return self.verdict in (Verdict.OK, Verdict.REPAIRED)

    @property
    def rejected(self) -> bool:
        return self.verdict is Verdict.REJECTED

    def defect_kinds(self) -> tuple[str, ...]:
        return tuple(d.kind for d in self.defects)

    def describe(self) -> str:
        inventory = ", ".join(
            f"{d.kind}×{d.count}" + (" (repaired)" if d.repaired else "")
            for d in self.defects
        )
        return f"{self.name}: {self.verdict.value}" + (
            f" [{inventory}]" if inventory else ""
        )


def nan_runs(mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(starts, ends)`` of consecutive ``True`` runs in a 1-D mask
    (ends exclusive)."""
    mask = np.asarray(mask, dtype=bool)
    padded = np.zeros(len(mask) + 2, dtype=bool)
    padded[1:-1] = mask
    starts = np.flatnonzero(padded[1:] & ~padded[:-1])
    ends = np.flatnonzero(~padded[1:] & padded[:-1])
    return starts, ends


def _as_1d_float(values, name: str) -> tuple[np.ndarray | None, Defect | None]:
    """Coerce to a 1-D float64 array or explain why that is impossible."""
    try:
        array = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as err:
        return None, Defect("bad_dtype", detail=str(err))
    if array.ndim != 1:
        return None, Defect("not_1d", detail=f"shape {array.shape}")
    if array.size < 2:
        return None, Defect("too_short", detail=f"{array.size} samples")
    return array, None


def _repair_gaps(
    values: np.ndarray, max_gap: int
) -> tuple[np.ndarray, list[Defect]]:
    """Interpolate short NaN runs; leave long runs in place.

    Interior gaps are linearly interpolated between the flanking finite
    samples; edge gaps hold the nearest finite value (``np.interp``
    semantics). Returns the (possibly copied) array and defect records.
    """
    isnan = np.isnan(values)
    if not isnan.any():
        return values, []
    starts, ends = nan_runs(isnan)
    lengths = ends - starts
    short = lengths <= max_gap
    defects: list[Defect] = []
    out = values
    if short.any():
        finite_idx = np.flatnonzero(~isnan)
        filled = np.interp(np.arange(len(values)), finite_idx, values[finite_idx])
        out = np.where(isnan, filled, values)
        # Long runs stay NaN — the "omit subsequences with missing
        # data" rule downstream must still see them.
        for s, e in zip(starts[~short], ends[~short]):
            out[s:e] = np.nan
        defects.append(
            Defect(
                "nan_gap",
                count=int(lengths[short].sum()),
                repaired=True,
                detail=f"{int(short.sum())} run(s) interpolated",
            )
        )
    if (~short).any():
        defects.append(
            Defect(
                "long_nan_gap",
                count=int(lengths[~short].sum()),
                repaired=False,
                detail=f"{int((~short).sum())} run(s) > {max_gap} samples",
            )
        )
    return out, defects


def _record(report: ValidationReport) -> ValidationReport:
    if obs.enabled():
        registry = obs.registry
        registry.counter(
            "robust.validation_verdicts_total",
            help="validation outcomes by verdict",
        ).inc(verdict=report.verdict.value, name=report.name)
        for defect in report.defects:
            registry.counter(
                "robust.defects_total",
                help="input defects found by the validators",
            ).inc(defect.count, kind=defect.kind)
            if defect.repaired:
                registry.counter(
                    "robust.repairs_total",
                    help="samples repaired by the validators",
                ).inc(defect.count, kind=defect.kind)
    return report


def validate_series(
    series,
    *,
    max_gap: int = DEFAULT_MAX_GAP,
    clip_negative: bool = True,
    name: str = "series",
) -> tuple[np.ndarray | None, ValidationReport]:
    """Classify and repair one full recording.

    Returns ``(repaired, report)``. ``repaired`` is a new float64 array
    (the input is never mutated) or ``None`` when the verdict is
    :attr:`Verdict.REJECTED`. A :attr:`Verdict.DEGRADED` series still
    has long NaN gaps — usable, but windows over the gaps will be
    dropped downstream.
    """
    array, fatal = _as_1d_float(series, name)
    if fatal is not None:
        return None, _record(
            ValidationReport(Verdict.REJECTED, (fatal,), name=name)
        )
    out = array.copy()
    defects: list[Defect] = []
    non_finite = np.isinf(out)
    if non_finite.any():
        out[non_finite] = np.nan
        defects.append(
            Defect("non_finite", count=int(non_finite.sum()), repaired=True)
        )
    if clip_negative:
        negative = out < 0.0  # NaN compares False — untouched here
        if negative.any():
            out[negative] = 0.0
            defects.append(
                Defect("negative_power", count=int(negative.sum()), repaired=True)
            )
    if np.isnan(out).all():
        defects.append(Defect("all_nan", count=out.size))
        return None, _record(
            ValidationReport(Verdict.REJECTED, tuple(defects), name=name)
        )
    out, gap_defects = _repair_gaps(out, max_gap)
    defects.extend(gap_defects)
    if any(not d.repaired for d in defects):
        verdict = Verdict.DEGRADED
    elif defects:
        verdict = Verdict.REPAIRED
    else:
        verdict = Verdict.OK
    return out, _record(ValidationReport(verdict, tuple(defects), name=name))


def validate_window(
    watts,
    *,
    expected_length: int | None = None,
    max_gap: int = DEFAULT_MAX_GAP,
    max_nan_fraction: float = DEFAULT_MAX_NAN_FRACTION,
    clip_negative: bool = True,
    name: str = "window",
) -> tuple[np.ndarray | None, ValidationReport]:
    """Classify and repair one inference window.

    Stricter than :func:`validate_series`: a window either comes out
    fully finite (``OK``/``REPAIRED`` — safe for the model) or is
    ``DEGRADED`` (caller must skip localization and report
    detection-unavailable) or ``REJECTED`` (wrong length/shape, all
    NaN). Windows whose NaN fraction exceeds ``max_nan_fraction`` are
    degraded without interpolation — repairing that much data would
    fabricate consumption.
    """
    array, fatal = _as_1d_float(watts, name)
    if fatal is not None:
        return None, _record(
            ValidationReport(Verdict.REJECTED, (fatal,), name=name)
        )
    if expected_length is not None and array.size != expected_length:
        defect = Defect(
            "length_mismatch",
            detail=f"got {array.size}, expected {expected_length}",
        )
        return None, _record(
            ValidationReport(Verdict.REJECTED, (defect,), name=name)
        )
    out = array.copy()
    defects: list[Defect] = []
    non_finite = np.isinf(out)
    if non_finite.any():
        out[non_finite] = np.nan
        defects.append(
            Defect("non_finite", count=int(non_finite.sum()), repaired=True)
        )
    if clip_negative:
        negative = out < 0.0
        if negative.any():
            out[negative] = 0.0
            defects.append(
                Defect("negative_power", count=int(negative.sum()), repaired=True)
            )
    isnan = np.isnan(out)
    n_nan = int(isnan.sum())
    if n_nan == out.size:
        defects.append(Defect("all_nan", count=n_nan))
        return None, _record(
            ValidationReport(Verdict.REJECTED, tuple(defects), name=name)
        )
    if n_nan > max_nan_fraction * out.size:
        defects.append(
            Defect(
                "nan_excess",
                count=n_nan,
                detail=f"{n_nan}/{out.size} NaN exceeds the repair budget",
            )
        )
        return out, _record(
            ValidationReport(Verdict.DEGRADED, tuple(defects), name=name)
        )
    out, gap_defects = _repair_gaps(out, max_gap)
    defects.extend(gap_defects)
    if np.isnan(out).any():  # a long run survived the repair budget
        verdict = Verdict.DEGRADED
    elif defects:
        verdict = Verdict.REPAIRED
    else:
        verdict = Verdict.OK
    return out, _record(ValidationReport(verdict, tuple(defects), name=name))


def ensure_series(series, **kwargs) -> tuple[np.ndarray, ValidationReport]:
    """:func:`validate_series` that raises :class:`SeriesRejected`."""
    repaired, report = validate_series(series, **kwargs)
    if repaired is None:
        raise SeriesRejected(report.describe())
    return repaired, report


def ensure_window(watts, **kwargs) -> tuple[np.ndarray, ValidationReport]:
    """:func:`validate_window` that raises :class:`WindowRejected` on
    reject *or* degrade — for callers that cannot run partially."""
    repaired, report = validate_window(watts, **kwargs)
    if repaired is None or not report.usable:
        raise WindowRejected(report.describe())
    return repaired, report
