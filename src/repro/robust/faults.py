"""Deterministic fault injection for the ingestion/inference path.

Library code exposes *fault sites* by calling :func:`checkpoint` (may
raise an injected error or sleep an injected delay) and routing arrays
through :func:`corrupt` (may overwrite a seeded fraction of samples
with NaN). When no :class:`FaultPlan` is active both are near-free
no-ops — a single module-global ``None`` check — so production code
pays nothing.

Instrumented sites (grep for the literals to find the call sites):

========================  ====================================================
``store.read``            :meth:`repro.datasets.House.read_window`
``io.read_csv``           :func:`repro.datasets.house_from_csv`
``io.read_manifest``      :func:`repro.datasets.dataset_from_dir`
``persistence.load``      :func:`repro.core.load_camal`
``camal.localize``        :meth:`repro.core.CamAL.localize`
========================  ====================================================

Determinism: each site keeps its own call counter inside the plan
(checkpoints and corruptions are counted independently), faults fire at
the exact call indices given via ``at``, and NaN bursts draw positions
from ``numpy`` generators seeded by ``(plan seed, site, call index)`` —
the same plan run twice produces byte-identical corruption.

Usage::

    plan = (
        FaultPlan(seed=0)
        .fail("store.read", at=0)                 # first read errors once
        .nan_burst("store.read", at=1, fraction=0.02)
        .slow("persistence.load", at=0, seconds=0.5)
    )
    with inject(plan):
        run_workload()
    print(plan.triggered)   # what actually fired, in order
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from .errors import FaultInjected

__all__ = ["FaultPlan", "inject", "active", "checkpoint", "corrupt"]


@dataclass
class _Fault:
    kind: str  # "error" | "slow" | "nan"
    at: frozenset[int] | None  # call indices; None = every call
    error: type[BaseException] | BaseException | None = None
    seconds: float = 0.0
    fraction: float = 0.02

    def matches(self, index: int) -> bool:
        return self.at is None or index in self.at


def _indices(at) -> frozenset[int] | None:
    if at is None:
        return None
    if isinstance(at, int):
        return frozenset((at,))
    return frozenset(int(i) for i in at)


class FaultPlan:
    """A deterministic script of faults keyed by site and call index.

    ``at`` accepts an int, an iterable of ints, or ``None`` (every
    call). Error/slow faults fire on :func:`checkpoint` calls; NaN
    bursts fire on :func:`corrupt` calls — the two streams are counted
    independently per site (a failed checkpoint never reaches its
    corrupt call, so sharing one counter would skew indices).
    """

    def __init__(self, seed: int = 0, sleep=time.sleep):
        self.seed = int(seed)
        self._sleep = sleep
        self._faults: dict[str, list[_Fault]] = {}
        self._checkpoint_calls: dict[str, int] = {}
        self._corrupt_calls: dict[str, int] = {}
        #: Chronological record of every fault that actually fired:
        #: ``{"site", "kind", "index", ...}`` dicts.
        self.triggered: list[dict] = []

    # -- authoring ---------------------------------------------------------

    def fail(
        self,
        site: str,
        at: int | list[int] | None = 0,
        error: type[BaseException] | BaseException | None = None,
    ) -> "FaultPlan":
        """Raise ``error`` (default :class:`FaultInjected`) at ``site``."""
        self._faults.setdefault(site, []).append(
            _Fault("error", _indices(at), error=error)
        )
        return self

    def slow(
        self, site: str, at: int | list[int] | None = 0, seconds: float = 0.05
    ) -> "FaultPlan":
        """Sleep ``seconds`` before the call at ``site`` proceeds."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self._faults.setdefault(site, []).append(
            _Fault("slow", _indices(at), seconds=seconds)
        )
        return self

    def nan_burst(
        self,
        site: str,
        at: int | list[int] | None = 0,
        fraction: float = 0.02,
    ) -> "FaultPlan":
        """Overwrite ``fraction`` of the array at ``site`` with NaN."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self._faults.setdefault(site, []).append(
            _Fault("nan", _indices(at), fraction=fraction)
        )
        return self

    # -- bookkeeping -------------------------------------------------------

    def calls(self, site: str) -> tuple[int, int]:
        """``(checkpoint_calls, corrupt_calls)`` seen at ``site``."""
        return (
            self._checkpoint_calls.get(site, 0),
            self._corrupt_calls.get(site, 0),
        )

    def summary(self) -> dict:
        """Plain-dict report for the ``faultcheck`` CLI and tests."""
        by_kind: dict[str, int] = {}
        for record in self.triggered:
            by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
        return {
            "seed": self.seed,
            "triggered": list(self.triggered),
            "by_kind": by_kind,
            "calls": {
                site: self.calls(site)
                for site in sorted(
                    set(self._checkpoint_calls) | set(self._corrupt_calls)
                )
            },
        }

    def _record(self, site: str, kind: str, index: int, **extra) -> None:
        self.triggered.append(
            {"site": site, "kind": kind, "index": index, **extra}
        )
        if obs.enabled():
            obs.registry.counter(
                "robust.faults_injected_total",
                help="faults fired by the injection harness",
            ).inc(site=site, kind=kind)

    # -- firing ------------------------------------------------------------

    def _make_error(self, fault: _Fault, site: str, index: int) -> BaseException:
        error = fault.error
        if error is None:
            return FaultInjected(f"injected fault at {site}[{index}]")
        if isinstance(error, BaseException):
            return error
        return error(f"injected fault at {site}[{index}]")

    def _on_checkpoint(self, site: str) -> None:
        index = self._checkpoint_calls.get(site, 0)
        self._checkpoint_calls[site] = index + 1
        for fault in self._faults.get(site, ()):
            if fault.kind == "slow" and fault.matches(index):
                self._record(site, "slow", index, seconds=fault.seconds)
                self._sleep(fault.seconds)
        for fault in self._faults.get(site, ()):
            if fault.kind == "error" and fault.matches(index):
                self._record(site, "error", index)
                raise self._make_error(fault, site, index)

    def _burst_rng(self, site: str, index: int) -> np.random.Generator:
        digest = hashlib.blake2b(
            f"{self.seed}:{site}:{index}".encode(), digest_size=8
        ).digest()
        return np.random.default_rng(int.from_bytes(digest, "little"))

    def _on_corrupt(self, site: str, values: np.ndarray) -> np.ndarray:
        index = self._corrupt_calls.get(site, 0)
        self._corrupt_calls[site] = index + 1
        out = values
        for fault in self._faults.get(site, ()):
            if fault.kind != "nan" or not fault.matches(index):
                continue
            out = np.asarray(out, dtype=np.float64).copy()
            if out.size == 0:
                continue
            n = max(1, int(round(fault.fraction * out.size)))
            positions = self._burst_rng(site, index).choice(
                out.size, size=min(n, out.size), replace=False
            )
            out.reshape(-1)[positions] = np.nan
            self._record(site, "nan", index, samples=int(len(positions)))
        return out


_ACTIVE: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The plan currently injected, if any."""
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan):
    """Activate ``plan`` for the duration of the block (re-entrant —
    the previous plan, if any, is restored on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def checkpoint(site: str) -> None:
    """Fault site marker: may raise or sleep per the active plan."""
    plan = _ACTIVE
    if plan is not None:
        plan._on_checkpoint(site)


def corrupt(site: str, values: np.ndarray) -> np.ndarray:
    """Fault site marker for data: may NaN-burst per the active plan."""
    plan = _ACTIVE
    if plan is None:
        return values
    return plan._on_corrupt(site, values)
