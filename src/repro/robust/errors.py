"""Typed errors for the fault-tolerance layer.

Every failure mode the robust layer can surface has its own exception
type, so callers can distinguish "this input is garbage" (reject — fix
the data) from "the backend flaked" (retry — or degrade gracefully).
"""

from __future__ import annotations

__all__ = [
    "RobustError",
    "ValidationError",
    "SeriesRejected",
    "WindowRejected",
    "RetriesExhausted",
    "FaultInjected",
]


class RobustError(Exception):
    """Base class for every error raised by :mod:`repro.robust`."""


class ValidationError(RobustError, ValueError):
    """An input failed validation and could not be repaired."""


class SeriesRejected(ValidationError):
    """A full recording is unusable (wrong shape/dtype, all NaN, ...)."""


class WindowRejected(ValidationError):
    """A single inference window is unusable."""


class RetriesExhausted(RobustError, RuntimeError):
    """A retriable operation kept failing past its attempt/time budget.

    ``__cause__`` holds the last underlying exception; ``attempts`` and
    ``elapsed_s`` record how much budget was burned before giving up.
    """

    def __init__(self, message: str, attempts: int = 0, elapsed_s: float = 0.0):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed_s = elapsed_s


class FaultInjected(OSError):
    """Default error raised by the fault-injection harness.

    Subclasses ``OSError`` so it matches the retry decorators' default
    ``retry_on`` filter — an injected fault looks like a transient I/O
    failure to the code under test.
    """
