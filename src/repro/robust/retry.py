"""Retry with jittered exponential backoff and an overall deadline.

``retriable`` hardens the repo's read paths (CSV ingestion, checkpoint
loads, store reads) against transient failures: each failure of a
``retry_on`` exception sleeps ``backoff * factor**(attempt-1)`` seconds
(plus up to ``jitter`` relative random extra, so a fleet of workers
retrying the same backend does not stampede in lockstep), until either
an attempt succeeds, ``max_attempts`` is reached, or the ``timeout``
deadline passes — then :class:`RetriesExhausted` is raised with the
last error chained.

Attempts, recoveries, and give-ups are counted through :mod:`repro.obs`
(``robust.retry_attempts_total`` / ``robust.retry_recoveries_total`` /
``robust.retry_giveups_total``, labelled by function) when observability
is enabled.

Testability: ``sleep``/``clock``/``rng`` are injectable per decorator,
and the module-level defaults (``_sleep``, ``_clock``) can be
monkeypatched to drive the schedule with a fake clock. The deadline is
checked *between* attempts — a call that hangs forever is not preempted
(no thread per call); pair with the fault harness's slow-call injection
to test that path.
"""

from __future__ import annotations

import functools
import random
import time
from typing import Callable, Iterable

from .. import obs
from .errors import RetriesExhausted

__all__ = ["retriable", "backoff_schedule"]

# Module-level indirection so tests can monkeypatch time away.
_sleep = time.sleep
_clock = time.monotonic


def backoff_schedule(
    max_attempts: int,
    backoff: float,
    factor: float = 2.0,
    max_backoff: float = 2.0,
) -> list[float]:
    """The jitter-free delays slept between attempts (length
    ``max_attempts - 1``)."""
    return [
        min(backoff * factor**i, max_backoff) for i in range(max_attempts - 1)
    ]


def retriable(
    max_attempts: int = 3,
    backoff: float = 0.05,
    factor: float = 2.0,
    max_backoff: float = 2.0,
    jitter: float = 0.1,
    timeout: float | None = None,
    retry_on: Iterable[type[BaseException]] = (OSError, TimeoutError),
    name: str | None = None,
    sleep: Callable[[float], None] | None = None,
    clock: Callable[[], float] | None = None,
    rng: random.Random | None = None,
) -> Callable:
    """Decorator factory: retry the wrapped callable on transient errors.

    Parameters
    ----------
    max_attempts:
        Total tries (the first call included), >= 1.
    backoff, factor, max_backoff:
        Exponential schedule: sleep ``min(backoff * factor**k,
        max_backoff)`` after the ``k``-th failure.
    jitter:
        Relative extra sleep in ``[0, jitter)`` drawn per retry.
    timeout:
        Overall wall-clock budget in seconds measured from the first
        attempt; once exceeded no further attempts are made.
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.
    name:
        Label used in error messages and obs counters (defaults to the
        wrapped function's qualified name).
    sleep, clock, rng:
        Injection points for tests (default: real time and a seeded
        ``random.Random`` per decorated function).
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if backoff < 0 or jitter < 0:
        raise ValueError("backoff and jitter must be >= 0")
    retry_types = tuple(retry_on)

    def decorate(fn: Callable) -> Callable:
        label = name or getattr(fn, "__qualname__", repr(fn))
        local_rng = rng or random.Random(0xB0FF)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            do_sleep = sleep or _sleep
            now = clock or _clock
            start = now()
            last_error: BaseException | None = None
            for attempt in range(1, max_attempts + 1):
                try:
                    result = fn(*args, **kwargs)
                except retry_types as err:
                    last_error = err
                    _count("robust.retry_attempts_total", label, attempt=attempt)
                    elapsed = now() - start
                    out_of_budget = (
                        attempt >= max_attempts
                        or (timeout is not None and elapsed >= timeout)
                    )
                    if out_of_budget:
                        _count("robust.retry_giveups_total", label)
                        raise RetriesExhausted(
                            f"{label} failed after {attempt} attempt(s) "
                            f"in {elapsed:.3f}s: {err}",
                            attempts=attempt,
                            elapsed_s=elapsed,
                        ) from err
                    delay = min(backoff * factor ** (attempt - 1), max_backoff)
                    delay *= 1.0 + jitter * local_rng.random()
                    do_sleep(delay)
                else:
                    if attempt > 1:
                        _count("robust.retry_recoveries_total", label)
                    return result
            raise AssertionError("unreachable")  # pragma: no cover

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def _count(metric: str, label: str, **fields: object) -> None:
    if obs.enabled():
        obs.registry.counter(
            metric, help="retry decorator bookkeeping"
        ).inc(function=label)
        # The event record is stamped with the active request id (if
        # any), so retries show up attributed in the request's log.
        obs.log.event(metric, function=label, **fields)
