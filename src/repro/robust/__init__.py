"""``repro.robust`` — fault-tolerant ingestion and inference.

Three pieces (DESIGN.md §8 "Robustness & failure semantics"):

* :mod:`repro.robust.validate` — classify input defects (NaN gaps,
  negative power, non-finite values, wrong shape/length) and repair,
  degrade, or reject with typed errors.
* :mod:`repro.robust.retry` — ``retriable(...)``: jittered exponential
  backoff with an overall deadline, wrapped around the CSV/checkpoint/
  store read paths.
* :mod:`repro.robust.faults` — a deterministic fault-injection harness
  (:class:`FaultPlan` + :func:`inject`) driving the failure-path test
  suite and the ``devicescope faultcheck`` CLI smoke.

All bookkeeping flows through :mod:`repro.obs` under the ``robust.*``
metric prefix and is zero-cost when observability is disabled.
"""

from .. import obs
from .errors import (
    FaultInjected,
    RetriesExhausted,
    RobustError,
    SeriesRejected,
    ValidationError,
    WindowRejected,
)
from .faults import FaultPlan, active, checkpoint, corrupt, inject
from .retry import backoff_schedule, retriable
from .validate import (
    Defect,
    ValidationReport,
    Verdict,
    ensure_series,
    ensure_window,
    validate_series,
    validate_window,
)

__all__ = [
    "RobustError",
    "ValidationError",
    "SeriesRejected",
    "WindowRejected",
    "RetriesExhausted",
    "FaultInjected",
    "Verdict",
    "Defect",
    "ValidationReport",
    "validate_series",
    "validate_window",
    "ensure_series",
    "ensure_window",
    "retriable",
    "backoff_schedule",
    "FaultPlan",
    "inject",
    "active",
    "checkpoint",
    "corrupt",
    "metrics_snapshot",
]


def metrics_snapshot() -> dict:
    """Every ``robust.*`` metric currently in the obs registry, as a
    plain dict (empty when nothing was recorded)."""
    return {
        name: metric
        for name, metric in obs.registry.snapshot().items()
        if name.startswith("robust.")
    }
