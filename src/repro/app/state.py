"""Session state for the DeviceScope application.

Mirrors the GUI's sidebar inputs (§III): selected dataset, time series
(house), window length, current window position, and the appliances
whose predicted status is displayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import WINDOW_LENGTHS

__all__ = ["SessionState"]


@dataclass
class SessionState:
    """The user's current selections in the app."""

    dataset_name: str = ""
    house_id: str = ""
    window: str = "12h"
    position: int = 0
    selected_appliances: list[str] = field(default_factory=list)

    def __post_init__(self):
        if self.window not in WINDOW_LENGTHS:
            raise ValueError(
                f"window must be one of {', '.join(WINDOW_LENGTHS)}, "
                f"got {self.window!r}"
            )
        if self.position < 0:
            raise ValueError("position must be >= 0")

    def select_window(self, window: str) -> None:
        """Change the window length; resets the paging position."""
        if window not in WINDOW_LENGTHS:
            raise ValueError(
                f"window must be one of {', '.join(WINDOW_LENGTHS)}, "
                f"got {window!r}"
            )
        self.window = window
        self.position = 0

    def select_house(self, house_id: str) -> None:
        """Change the loaded series; resets the paging position."""
        self.house_id = house_id
        self.position = 0

    def toggle_appliance(self, appliance: str) -> None:
        """Add or remove an appliance from the displayed set."""
        if appliance in self.selected_appliances:
            self.selected_appliances.remove(appliance)
        else:
            self.selected_appliances.append(appliance)

    def advance(self, n_windows: int, step: int = 1) -> int:
        """Move Next (+1) or Prev (-1), clamped to [0, n_windows - 1]."""
        if n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        self.position = int(min(max(self.position + step, 0), n_windows - 1))
        return self.position
