"""The Playground frame (paper §III, Figure 5 A).

Implements every interaction of the GUI's first frame as an API:

* A.1 — browse the loaded consumption series window by window (Prev /
  Next over 6 h / 12 h / 1 day tiles), with each selected appliance's
  predicted status below the aggregate.
* A.2 — the "Per device" view: ground-truth appliance power next to the
  predicted localization.
* A.3 — "Model detection probabilities": the ensemble's (and each
  member's) detection probability for the current window.
* A.4 — example appliance patterns (the expander of Scenario 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core import CamAL, ResultCache, window_key
from ..datasets import (
    SmartMeterDataset,
    get_appliance_spec,
    render_activation,
    strong_labels,
    window_samples,
)
from ..robust import RetriesExhausted, RobustError
from .state import SessionState

__all__ = ["AppliancePrediction", "WindowView", "Playground"]


@dataclass
class AppliancePrediction:
    """One appliance's detection + localization for the current window."""

    appliance: str
    probability: float
    detected: bool
    status: np.ndarray  # (T,) predicted binary status
    cam: np.ndarray  # (T,) averaged normalized CAM
    member_probabilities: dict[int, float]
    ground_truth_watts: np.ndarray | None = None  # (T,) submeter power
    ground_truth_status: np.ndarray | None = None  # (T,) true binary status
    uncertainty: float = 0.0  # ensemble disagreement (std of member probs)
    verdict: str = "ok"  # ok | repaired | degraded | failed

    @property
    def repaired(self) -> bool:
        return self.verdict == "repaired"

    @property
    def degraded(self) -> bool:
        return self.verdict in ("degraded", "failed")


@dataclass
class WindowView:
    """Everything the GUI renders for the current window."""

    house_id: str
    window: str
    position: int
    n_windows: int
    start: int
    hours: np.ndarray  # (T,) hour-of-recording axis
    watts: np.ndarray  # (T,) aggregate power
    missing: bool  # window contains meter outages
    degraded: bool = False  # the store read gave up; watts are a NaN stub
    predictions: dict[str, AppliancePrediction] = field(default_factory=dict)

    @property
    def has_previous(self) -> bool:
        return self.position > 0

    @property
    def has_next(self) -> bool:
        return self.position < self.n_windows - 1


class Playground:
    """Window-by-window exploration of one dataset with trained models.

    Parameters
    ----------
    dataset:
        The series to browse — per the paper, houses *distinct from the
        training houses*.
    models:
        Appliance name → trained :class:`CamAL`. Appliances without a
        model can still be browsed as ground truth but not predicted.
    state:
        Optional shared session state (created fresh otherwise).
    cache:
        Result memoization for Prev/Next navigation — revisiting a
        window re-renders from the cached :class:`CamALResult` instead
        of re-running the ensemble. Pass an explicit
        :class:`~repro.core.ResultCache` to share one across frames, or
        ``None`` to disable caching entirely.
    """

    _NO_CACHE = object()  # sentinel: "use the default cache"

    def __init__(
        self,
        dataset: SmartMeterDataset,
        models: dict[str, CamAL] | None = None,
        state: SessionState | None = None,
        cache: ResultCache | None | object = _NO_CACHE,
    ):
        self.dataset = dataset
        self.models = dict(models or {})
        self.state = state or SessionState(dataset_name=dataset.name)
        if cache is Playground._NO_CACHE:
            cache = ResultCache(maxsize=256, name="playground")
        self.cache = cache
        if not self.state.house_id:
            self.state.house_id = dataset.house_ids[0]

    # -- selection ---------------------------------------------------------

    @property
    def house(self):
        return self.dataset.get_house(self.state.house_id)

    @property
    def window_length(self) -> int:
        return window_samples(self.state.window, self.dataset.step_s)

    @property
    def n_windows(self) -> int:
        return max(self.house.n_steps // self.window_length, 1)

    def select_house(self, house_id: str) -> None:
        self.dataset.get_house(house_id)  # validate
        self.state.select_house(house_id)

    def select_window(self, window: str) -> None:
        self.state.select_window(window)

    def available_appliances(self) -> list[str]:
        """Appliances with a trained model, in catalogue order."""
        return [a for a in self.house.appliances if a in self.models]

    # -- the A.4 expander --------------------------------------------------

    def example_pattern(self, appliance: str, seed: int = 0) -> np.ndarray:
        """A representative watt trace of one activation, for the
        "examples of appliance patterns" expander."""
        spec = get_appliance_spec(appliance)
        rng = np.random.default_rng(seed)
        duration_s = float(np.mean(spec.duration_s))
        n_steps = max(int(round(duration_s / self.dataset.step_s)), 2)
        return render_activation(spec, n_steps, self.dataset.step_s, rng)

    # -- window views (A.1 - A.3) ----------------------------------------

    def view(self, appliances: list[str] | None = None) -> WindowView:
        """Render the current window with predictions for ``appliances``
        (default: the session's selected appliances).

        The whole render runs inside an ``obs.request(kind="view")``
        scope — every span, metric event, cache hit/miss, retry, and
        warning it causes carries the same request id, and the request's
        wall time feeds the session SLO tracker. A caller that already
        opened a request (e.g. the CLI driving several views under one
        scope) is joined, not shadowed.
        """
        appliances = (
            appliances
            if appliances is not None
            else self.state.selected_appliances
        )
        position = min(self.state.position, self.n_windows - 1)
        with obs.request(
            kind="view",
            house=self.state.house_id,
            window=self.state.window,
            position=position,
        ) as req:
            return self._render_view(appliances, position, req)

    def _render_view(self, appliances, position, req) -> WindowView:
        house = self.house
        length = self.window_length
        start = position * length
        degraded = False
        try:
            # Fault-tolerant read: transient store failures are retried
            # with backoff inside House.read_window.
            watts = house.read_window(start, length)
        except RetriesExhausted:
            # The read kept failing — render a NaN stub so navigation
            # stays alive instead of crashing the frame.
            watts = np.full(length, np.nan)
            degraded = True
            if obs.enabled():
                obs.registry.counter(
                    "robust.view_read_giveups_total",
                    help="playground window reads abandoned after retries",
                ).inc()
        missing = bool(np.isnan(watts).any())
        view = WindowView(
            house_id=house.house_id,
            window=self.state.window,
            position=position,
            n_windows=self.n_windows,
            start=start,
            hours=house.hours_index()[start : start + length],
            watts=watts,
            missing=missing,
            degraded=degraded,
        )
        for appliance in appliances:
            prediction = self._predict(house, appliance, watts, start, length)
            if prediction is not None:
                view.predictions[appliance] = prediction
        if degraded or any(p.degraded for p in view.predictions.values()):
            req.mark_degraded()
        return view

    def _predict(self, house, appliance, watts, start, length):
        if appliance not in self.models:
            raise KeyError(
                f"no trained model for {appliance!r}; available: "
                f"{', '.join(self.models) or '(none)'}"
            )
        truth_watts = None
        truth_status = None
        if appliance in house.submeters:
            truth_watts = house.submeters[appliance][start : start + length]
            truth_status = strong_labels(truth_watts, appliance)
        model = self.models[appliance]
        compute = lambda: model.localize_watts(
            watts[None, :], appliance=appliance
        )
        try:
            if self.cache is not None:
                # Degraded results must never become cache hits — a
                # transient defect would otherwise replay forever.
                key = window_key(appliance, watts, model.fingerprint())
                result = self.cache.get_or_compute(
                    key, compute, cache_if=lambda r: not r.any_degraded
                )
            else:
                result = compute()
        except (RobustError, OSError, TimeoutError):
            # Localization itself failed (store fault, injected error).
            # Degrade this one prediction; the view and the other
            # appliances keep rendering. Nothing was cached: a raising
            # compute stores no entry.
            if obs.enabled():
                obs.registry.counter(
                    "robust.prediction_failures_total",
                    help="playground predictions degraded by compute errors",
                ).inc(appliance=appliance)
            return self._unavailable(
                appliance, length, truth_watts, truth_status, "failed"
            )
        if result.degraded[0]:
            # The paper's pipeline omits windows with missing data; the
            # robust layer reports *why* via the degraded verdict.
            return self._unavailable(
                appliance, length, truth_watts, truth_status, "degraded"
            )
        return AppliancePrediction(
            appliance=appliance,
            probability=float(result.probabilities[0]),
            detected=bool(result.detected[0]),
            status=result.status[0],
            cam=result.cam[0],
            member_probabilities={
                k: float(v[0]) for k, v in result.member_probabilities.items()
            },
            ground_truth_watts=truth_watts,
            ground_truth_status=truth_status,
            uncertainty=float(result.uncertainty[0]),
            verdict="repaired" if result.repaired[0] else "ok",
        )

    @staticmethod
    def _unavailable(appliance, length, truth_watts, truth_status, verdict):
        """A no-prediction placeholder: detection off, status all-OFF."""
        return AppliancePrediction(
            appliance=appliance,
            probability=float("nan"),
            detected=False,
            status=np.zeros(length),
            cam=np.zeros(length),
            member_probabilities={},
            ground_truth_watts=truth_watts,
            ground_truth_status=truth_status,
            verdict=verdict,
        )

    # -- navigation (the Prev / Next buttons) ------------------------------

    def next(self) -> WindowView:
        self.state.advance(self.n_windows, +1)
        return self.view()

    def previous(self) -> WindowView:
        self.state.advance(self.n_windows, -1)
        return self.view()

    def jump(self, position: int) -> WindowView:
        if not 0 <= position < self.n_windows:
            raise ValueError(
                f"position must be in [0, {self.n_windows - 1}], "
                f"got {position}"
            )
        self.state.position = position
        return self.view()
