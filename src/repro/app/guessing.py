"""The Scenario-2 guessing game (paper §IV).

The demo "challenge[s] the user to interactively localize appliance
patterns and compare their estimation against the estimation obtained
with CamAL (and also the ground-truth)". :class:`GuessGame` implements
exactly that: the user marks intervals where they believe the appliance
ran in the current window; the game scores the guess against the
per-device ground truth and against CamAL's localization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval import Metrics, compute_metrics
from .playground import WindowView

__all__ = ["GuessOutcome", "GuessGame"]


@dataclass
class GuessOutcome:
    """Scores of one submitted guess."""

    appliance: str
    user: Metrics
    camal: Metrics
    user_beats_camal: bool
    guess_status: np.ndarray

    def summary(self) -> str:
        verdict = (
            "you beat CamAL!" if self.user_beats_camal else "CamAL wins."
        )
        return (
            f"{self.appliance}: your F1 {self.user.f1:.3f} vs CamAL "
            f"{self.camal.f1:.3f} — {verdict}"
        )


class GuessGame:
    """Score a user's interval guesses for one window.

    Parameters
    ----------
    view:
        A :class:`~repro.app.playground.WindowView` whose prediction for
        ``appliance`` includes ground truth (per-device view available).
    appliance:
        The appliance being guessed.
    """

    def __init__(self, view: WindowView, appliance: str):
        if appliance not in view.predictions:
            raise KeyError(
                f"view has no prediction for {appliance!r}; select it in "
                "the playground first"
            )
        prediction = view.predictions[appliance]
        if prediction.ground_truth_status is None:
            raise ValueError(
                "ground truth unavailable for this window; the guessing "
                "game needs the per-device view"
            )
        self.view = view
        self.appliance = appliance
        self.prediction = prediction
        self.window_length = len(view.watts)

    def intervals_to_status(
        self, intervals: list[tuple[int, int]]
    ) -> np.ndarray:
        """Convert user intervals ``[(start, end), ...)`` (half-open,
        window-relative samples) into a binary status series."""
        status = np.zeros(self.window_length)
        for start, end in intervals:
            if not 0 <= start < end <= self.window_length:
                raise ValueError(
                    f"interval [{start}, {end}) outside the window "
                    f"[0, {self.window_length})"
                )
            status[start:end] = 1.0
        return status

    def submit(self, intervals: list[tuple[int, int]]) -> GuessOutcome:
        """Score a guess against the ground truth and against CamAL."""
        guess = self.intervals_to_status(intervals)
        truth = self.prediction.ground_truth_status
        user = compute_metrics(truth, guess)
        camal = compute_metrics(truth, self.prediction.status)
        return GuessOutcome(
            appliance=self.appliance,
            user=user,
            camal=camal,
            user_beats_camal=user.f1 > camal.f1,
            guess_status=guess,
        )
