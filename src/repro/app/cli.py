"""DeviceScope command-line interface.

Three subcommands mirroring the demo scenarios (§IV):

* ``devicescope browse`` — Scenario 1/2: build a session, page through
  windows in the terminal with sparklines and predicted statuses.
* ``devicescope demo`` — train CamAL and write a standalone HTML report
  of the Playground frame.
* ``devicescope benchmark`` — Scenario 3: run the method comparison and
  print the detection/localization tables.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..datasets import APPLIANCE_NAMES, PROFILES, make_windows
from ..eval import BenchmarkRunner, format_benchmark
from ..models import TrainConfig, list_baselines
from .render import (
    ascii_series,
    benchmark_sections,
    profile_sections,
    render_window_view,
    write_report,
)
from .session import DeviceScope

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The devicescope argument parser (also used by the tests)."""
    parser = argparse.ArgumentParser(
        prog="devicescope",
        description=(
            "DeviceScope: detect and localize appliance patterns in "
            "electricity consumption series (ICDE 2025 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument(
            "--profile", default="ukdale", choices=sorted(PROFILES)
        )
        p.add_argument(
            "--appliance", default="kettle", choices=sorted(APPLIANCE_NAMES)
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--fast",
            action="store_true",
            help="tiny dataset and models (seconds instead of minutes)",
        )

    browse = sub.add_parser("browse", help="page through windows in the terminal")
    common(browse)
    browse.add_argument("--window", default="6h", choices=["6h", "12h", "1day"])
    browse.add_argument("--pages", type=int, default=3)

    demo = sub.add_parser("demo", help="train CamAL and write an HTML report")
    common(demo)
    demo.add_argument("--window", default="6h", choices=["6h", "12h", "1day"])
    demo.add_argument("--out", default="devicescope_report.html")
    demo.add_argument("--pages", type=int, default=3)

    bench = sub.add_parser("benchmark", help="compare CamAL against baselines")
    common(bench)
    bench.add_argument(
        "--methods",
        nargs="*",
        default=["mil", "seq2seq_cnn"],
        choices=list_baselines(include_extras=True),
    )
    bench.add_argument(
        "--save", default=None, metavar="DIR",
        help="persist results as JSON for 'devicescope report'",
    )

    report = sub.add_parser(
        "report", help="render saved benchmark results as an HTML report"
    )
    report.add_argument("results_dir", help="directory written by --save")
    report.add_argument("--out", default="benchmark_report.html")

    upload = sub.add_parser(
        "upload", help="browse an uploaded CSV consumption series"
    )
    upload.add_argument("csv", help="CSV with an 'aggregate' column")
    upload.add_argument("--pages", type=int, default=3)

    energy = sub.add_parser(
        "energy", help="per-appliance energy report for a held-out house"
    )
    common(energy)

    faultcheck = sub.add_parser(
        "faultcheck",
        help="inject deterministic faults and verify graceful degradation",
    )
    common(faultcheck)
    faultcheck.add_argument(
        "--nan-fraction", type=float, default=0.02,
        help="fraction of the first store read to overwrite with NaN",
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="drive a telemetry workload and export/watch the results",
    )
    common(obs_cmd)
    obs_cmd.add_argument(
        "--window", default="6h", choices=["6h", "12h", "1day"]
    )
    obs_cmd.add_argument(
        "--requests", type=int, default=6,
        help="Playground view requests to drive through the session",
    )
    obs_cmd.add_argument(
        "--workers", type=int, default=2,
        help="fast-path member fan-out threads (context propagation demo)",
    )
    obs_cmd.add_argument(
        "--openmetrics", action="store_true",
        help="print OpenMetrics text exposition on stdout (scrape-ready)",
    )
    obs_cmd.add_argument(
        "--trace-out", default=None, metavar="JSON",
        help="write the Chrome trace-event JSON (open in Perfetto)",
    )
    obs_cmd.add_argument(
        "--jsonl-out", default=None, metavar="JSONL",
        help="write structured log events as JSON Lines",
    )
    obs_cmd.add_argument(
        "--watch", action="store_true",
        help="render a live text dashboard while driving requests",
    )
    obs_cmd.add_argument(
        "--interval", type=float, default=0.5,
        help="seconds between --watch refreshes",
    )
    obs_cmd.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop --watch after N refreshes (default: one per request)",
    )
    obs_cmd.add_argument(
        "--store", default=".devicescope_telemetry", metavar="DIR",
        help="telemetry store directory (JSONL segments + rollups)",
    )
    obs_cmd.add_argument(
        "--no-store", action="store_true",
        help="do not persist request telemetry to --store",
    )
    obs_cmd.add_argument(
        "--history", action="store_true",
        help="print attainment/latency trends from the store and exit",
    )
    obs_cmd.add_argument(
        "--compact", action="store_true",
        help="fold sealed segments into per-period rollups",
    )
    obs_cmd.add_argument(
        "--flight", action="store_true",
        help="print the flight recorder's retained traces (tail-sampled: "
        "errors/degraded/sheds, the slowest decile, and a random baseline)",
    )
    obs_cmd.add_argument(
        "--pprof", action="store_true",
        help="run the continuous stack sampler during the workload and "
        "print collapsed-stack flamegraph text",
    )
    obs_cmd.add_argument(
        "--pprof-out", default=None, metavar="TXT",
        help="write the collapsed stacks to a file (implies --pprof)",
    )

    quality_cmd = sub.add_parser(
        "quality",
        help="model-quality report: drift vs a clean reference + canaries",
    )
    common(quality_cmd)
    quality_cmd.add_argument(
        "--scenario", default="clean", choices=["clean", "shifted"],
        help=(
            "live-traffic scenario: 'clean' draws from the reference "
            "distribution, 'shifted' degrades sampling and appliance mix"
        ),
    )
    quality_cmd.add_argument(
        "--perturb-checkpoint", action="store_true",
        help="corrupt the model weights after canary capture (the "
        "silent-model-change failure the canaries exist to catch)",
    )
    quality_cmd.add_argument(
        "--evaluations", type=int, default=3,
        help="monitoring ticks to run (alerts need consecutive evidence)",
    )
    quality_cmd.add_argument(
        "--store", default=".devicescope_telemetry", metavar="DIR",
        help="telemetry store directory shared with 'devicescope obs'",
    )
    quality_cmd.add_argument(
        "--no-store", action="store_true",
        help="do not persist request telemetry to --store",
    )
    quality_cmd.add_argument(
        "--json", action="store_true",
        help="emit the full quality report as JSON on stdout",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant HTTP service over the engine",
    )
    common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8000,
        help="TCP port (0 picks an ephemeral one and prints it)",
    )
    serve.add_argument(
        "--appliances", nargs="*", default=None,
        choices=sorted(APPLIANCE_NAMES), metavar="APPLIANCE",
        help="appliance models to serve (default: --appliance)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="fast-path member fan-out threads per ensemble sweep",
    )
    serve.add_argument(
        "--objective-ms", type=float, default=250.0,
        help="per-request latency objective for the SLO trackers",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=None,
        help="micro-batcher coalescing window in ms — concurrent "
        "detect/localize requests arriving within it share one "
        "ensemble sweep (0 disables batching; default 4.0)",
    )
    serve.add_argument(
        "--batch-max", type=int, default=None,
        help="max windows coalesced into one sweep (1 disables "
        "batching; default 16)",
    )
    serve.add_argument(
        "--profile-hz", type=float, default=None,
        help="continuous profiler sampling rate for /debug/pprof "
        "(default ~33 Hz; 0 disables the sampler)",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="boot on an ephemeral port, drive the CRUD→ingest→detect→"
        "metrics→health scenario plus an induced-overload 503 check "
        "over real HTTP, then exit 0/1 (the CI serve-smoke gate)",
    )

    stream = sub.add_parser(
        "stream",
        help="simulate live meter appends through the incremental path",
    )
    common(stream)
    stream.add_argument(
        "--window", type=int, default=1440,
        help="sliding analysis window in samples (default: one day)",
    )
    stream.add_argument(
        "--chunk", type=int, default=15,
        help="samples per append (a meter pushing every N minutes)",
    )
    stream.add_argument(
        "--appends", type=int, default=20,
        help="number of appends to stream after the warm-up window",
    )
    stream.add_argument(
        "--factor", type=int, default=1,
        help="raw readings per stored sample (block-mean resampled)",
    )
    stream.add_argument(
        "--verify", action="store_true",
        help="cold-recompute each window and assert bit-identical results",
    )
    stream.add_argument(
        "--json", action="store_true",
        help="emit the per-append log and summary as JSON on stdout",
    )

    profile = sub.add_parser(
        "profile",
        help="trace a representative CamAL workload (spans, layers, metrics)",
    )
    common(profile)
    profile.add_argument("--window", default="1day", choices=["6h", "12h", "1day"])
    profile.add_argument(
        "--repeats", type=int, default=2,
        help="localize the window this many times (averages layer costs)",
    )
    profile.add_argument(
        "--top", type=int, default=10, help="slowest layers to show"
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the full profile payload as JSON on stdout",
    )
    profile.add_argument(
        "--out", default=None, metavar="HTML",
        help="also write a standalone HTML observability panel",
    )
    return parser


def _session(args, window: str) -> DeviceScope:
    if args.fast:
        return DeviceScope.bootstrap(
            profile=args.profile,
            appliances=(args.appliance,),
            window=128,
            seed=args.seed,
            n_houses=3,
            days_per_house=(3, 4),
            kernel_sizes=(5, 9),
            n_filters=(8, 16, 16),
            train_config=TrainConfig(epochs=5, seed=args.seed),
        )
    return DeviceScope.bootstrap(
        profile=args.profile,
        appliances=(args.appliance,),
        window=window,
        seed=args.seed,
    )


def cmd_browse(args) -> int:
    """Scenario 1/2: page through windows with terminal sparklines."""
    session = _session(args, args.window)
    playground = session.playground
    if not args.fast:
        playground.select_window(args.window)
    playground.state.selected_appliances = [args.appliance]
    print(
        f"Dataset {session.dataset_name}: browsing house "
        f"{playground.state.house_id} ({playground.n_windows} windows)"
    )
    for _ in range(max(args.pages, 1)):
        view = playground.view()
        print(f"\n— window {view.position + 1}/{view.n_windows} —")
        print("aggregate  " + ascii_series(view.watts))
        if view.degraded:
            print("           (store read failed — window degraded)")
        for name, pred in view.predictions.items():
            marker = "DETECTED" if pred.detected else "not detected"
            prob = (
                f"p={pred.probability:.2f}"
                if np.isfinite(pred.probability)
                else "missing data"
            )
            if pred.verdict != "ok":
                prob += f", {pred.verdict}"
            print(f"{name:<11}" + ascii_series(pred.status) + f"  {marker} ({prob})")
        if not view.has_next:
            break
        playground.next()
    return 0


def cmd_demo(args) -> int:
    """Train CamAL and write a standalone HTML Playground report."""
    session = _session(args, args.window)
    playground = session.playground
    if not args.fast:
        playground.select_window(args.window)
    playground.state.selected_appliances = [args.appliance]
    sections = []
    for _ in range(max(args.pages, 1)):
        sections.append(render_window_view(playground.view()))
        if not playground.view().has_next:
            break
        playground.next()
    path = write_report(
        args.out, f"DeviceScope — {session.dataset_name} / {args.appliance}",
        sections,
    )
    print(f"report written to {path}")
    return 0


def cmd_benchmark(args) -> int:
    """Scenario 3: train and compare CamAL with the baselines."""
    from ..datasets import build_dataset

    if args.fast:
        dataset = build_dataset(
            args.profile, seed=args.seed, n_houses=3, days_per_house=(3, 4)
        )
        window, stride = 128, 64
        config = TrainConfig(epochs=5, seed=args.seed)
        kernels, filters = (5, 9), (8, 16, 16)
    else:
        dataset = build_dataset(args.profile, seed=args.seed)
        window, stride = "6h", None
        config = TrainConfig(epochs=10, seed=args.seed)
        kernels, filters = (5, 7, 9, 15), (8, 16, 16)
    train_ds, test_ds = dataset.split_houses(
        0.34, rng=np.random.default_rng(args.seed)
    )
    train_windows = make_windows(train_ds, args.appliance, window, stride=stride)
    test_windows = make_windows(
        test_ds, args.appliance, window, scaler=train_windows.scaler
    )
    runner = BenchmarkRunner(
        train_windows,
        test_windows,
        train_config=config,
        camal_kernel_sizes=kernels,
        camal_filters=filters,
        seed=args.seed,
        dataset_name=args.profile,
    )
    result = runner.run_all(args.methods)
    print(format_benchmark(result, "detection"))
    print()
    print(format_benchmark(result, "localization"))
    if args.save:
        from .benchmark_frame import BenchmarkBrowser

        browser = BenchmarkBrowser()
        browser.add(result)
        browser.save_dir(args.save)
        print(f"results saved to {args.save}")
    return 0


def cmd_report(args) -> int:
    """Render saved benchmark JSON as a standalone HTML report."""
    from .benchmark_frame import BenchmarkBrowser

    browser = BenchmarkBrowser.load_dir(args.results_dir)
    sections = []
    for dataset in browser.datasets:
        for appliance in browser.appliances(dataset):
            sections.extend(benchmark_sections(browser, dataset, appliance))
    if not sections:
        print(f"no results found in {args.results_dir}")
        return 1
    path = write_report(args.out, "DeviceScope — benchmark results", sections)
    print(f"report written to {path}")
    return 0


def cmd_upload(args) -> int:
    """Load a user CSV (the §III upload path) and browse it."""
    from ..datasets import house_from_csv

    house = house_from_csv(args.csv)
    print(
        f"loaded {house.house_id}: {house.n_steps} samples "
        f"(~{house.duration_days:.1f} days at {house.step_s:.0f}s), "
        f"channels: aggregate"
        + ("".join(f", {name}" for name in house.submeters))
    )
    length = min(360, max(house.n_steps // max(args.pages, 1), 2))
    for page in range(max(args.pages, 1)):
        start = page * length
        chunk = house.aggregate[start : start + length]
        if len(chunk) < 2:
            break
        print(f"window {page + 1}: " + ascii_series(chunk))
    return 0


def cmd_energy(args) -> int:
    """Per-appliance energy + usage report for a held-out house."""
    from ..core import CamAL, SlidingWindowLocalizer
    from ..datasets import build_dataset
    from ..eval import estimate_energy, format_table, usage_profile
    from ..models import TrainConfig

    if args.fast:
        dataset = build_dataset(
            args.profile, seed=args.seed, n_houses=4, days_per_house=(4, 5)
        )
        config = TrainConfig(epochs=5, seed=args.seed)
    else:
        dataset = build_dataset(args.profile, seed=args.seed)
        config = TrainConfig(epochs=10, seed=args.seed)
    train_houses, test_houses = dataset.split_houses(
        0.3, rng=np.random.default_rng(args.seed), stratify_by=args.appliance
    )
    owner = next(
        (h for h in test_houses.houses if h.possession.get(args.appliance)),
        test_houses.houses[0],
    )
    train = make_windows(train_houses, args.appliance, 128, stride=64)
    model = CamAL.train(
        train, kernel_sizes=(5, 9), n_filters=(8, 16, 16), train_config=config
    )
    located = SlidingWindowLocalizer(model, 128).localize_house(
        owner, args.appliance
    )
    estimate = estimate_energy(
        args.appliance,
        located.status,
        owner.aggregate,
        step_s=dataset.step_s,
        submeter_w=owner.submeters.get(args.appliance),
    )
    print(format_table([
        {
            "house": owner.house_id,
            "appliance": args.appliance,
            "estimated_kwh": estimate.estimated_kwh,
            "true_kwh": estimate.true_kwh,
        }
    ]))
    profile = usage_profile(
        args.appliance, located.status, power_w=owner.aggregate,
        step_s=dataset.step_s,
    )
    print(profile.describe())
    return 0


def cmd_faultcheck(args) -> int:
    """Robustness smoke: the acceptance scenario of DESIGN.md §8.

    Injects one transient store read error plus a NaN burst into a
    seeded synthetic workload (untrained ensemble — no training, so it
    finishes in seconds) and verifies the graceful-degradation
    contract: the pipeline and Playground navigation complete without
    raising, the results carry repaired/degraded flags, the retry layer
    recovered, and ``robust.*`` counters recorded all of it.
    """
    from .. import obs
    from ..core import CamAL, SlidingWindowLocalizer
    from ..datasets import Standardizer, build_dataset
    from ..models import ResNetEnsemble
    from ..robust import FaultPlan, inject, metrics_snapshot
    from .playground import Playground

    dataset = build_dataset(
        args.profile, seed=args.seed, n_houses=2, days_per_house=(2, 3)
    )
    house = dataset.houses[0]
    ensemble = ResNetEnsemble((5, 9), n_filters=(4, 8, 8), seed=args.seed)
    ensemble.eval()
    scaler = Standardizer.fit(
        np.nan_to_num(house.aggregate, nan=0.0)[None, :]
    )
    model = CamAL(ensemble, scaler)
    plan = (
        FaultPlan(seed=args.seed, sleep=lambda s: None)
        # First store read errors once; the retry decorator recovers.
        .fail("store.read", at=0)
        # The recovered read comes back with a NaN burst; the repair
        # layer interpolates the short gaps.
        .nan_burst("store.read", at=0, fraction=args.nan_fraction)
    )
    checks: list[tuple[str, bool]] = []
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    try:
        with inject(plan):
            localizer = SlidingWindowLocalizer(model, 128, repair=True)
            located = localizer.localize_house(house, args.appliance)
            checks.append(("pipeline completed under faults", True))
            checks.append(
                ("series flagged repaired/degraded",
                 located.repaired or located.degraded)
            )
            playground = Playground(dataset, {args.appliance: model})
            playground.state.selected_appliances = [args.appliance]
            playground.select_window("6h")
            views = [playground.view(), playground.next(), playground.previous()]
            checks.append(("playground navigation completed", True))
            checks.append(
                ("predictions rendered on every page",
                 all(args.appliance in v.predictions for v in views))
            )
            checks.append(
                ("revisit served from cache", playground.cache.hits >= 1)
            )
        kinds = {record["kind"] for record in plan.triggered}
        checks.append(("fault plan fired error + NaN burst",
                       {"error", "nan"} <= kinds))
        snapshot = metrics_snapshot()
        checks.append(
            ("robust.* counters recorded retry + repair",
             "robust.retry_recoveries_total" in snapshot
             and any(name.startswith(("robust.repairs_total",
                                      "robust.validation_verdicts_total"))
                     for name in snapshot))
        )
    except Exception as err:  # the contract is "never crash"
        checks.append((f"no unhandled exception ({type(err).__name__}: {err})",
                       False))
    finally:
        if not was_enabled:
            obs.disable()
    failed = [label for label, passed in checks if not passed]
    for label, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
    print(plan.summary()["by_kind"])
    # Degraded windows are the *expected* outcome here — the status
    # line shows how the injected faults surface in session health.
    print(f"health status: {_derived_status().upper()}")
    print("faultcheck: " + ("PASS" if not failed else "FAIL"))
    return 0 if not failed else 1


def _telemetry_playground(args, workers: int):
    """A training-free Playground (untrained ensemble over a seeded
    synthetic dataset) — the shared workload behind ``obs``/``faultcheck``
    style smokes: it exercises the exact serving hot path in seconds."""
    from ..core import CamAL
    from ..datasets import Standardizer, build_dataset
    from ..models import ResNetEnsemble
    from .playground import Playground

    n_houses = 2 if args.fast else 3
    dataset = build_dataset(
        args.profile, seed=args.seed, n_houses=n_houses, days_per_house=(2, 3)
    )
    kernels = (5, 9) if args.fast else (5, 7, 9, 15)
    ensemble = ResNetEnsemble(kernels, n_filters=(4, 8, 8), seed=args.seed)
    ensemble.eval()
    scaler = Standardizer.fit(
        np.nan_to_num(dataset.houses[0].aggregate, nan=0.0)[None, :]
    )
    model = CamAL(ensemble, scaler, workers=workers)
    playground = Playground(dataset, {args.appliance: model})
    playground.state.selected_appliances = [args.appliance]
    playground.select_window(args.window)
    return playground


#: ``--watch`` sleep hook — module-level so tests can stub it out
#: without patching the stdlib.
_WATCH_SLEEP = None  # None -> time.sleep


def _derived_status() -> str:
    """Process-wide health status — global obs/robust/quality state
    plus any serve-layer per-tenant SLO trackers, so the CLI and a
    running server's ``/health`` can never disagree."""
    from .session import process_status

    return process_status()


def _open_store(args):
    """The telemetry store selected by ``--store``/``--no-store``."""
    from ..obs.store import TelemetryStore

    if getattr(args, "no_store", False):
        return None
    return TelemetryStore(args.store)


def cmd_obs(args) -> int:
    """Telemetry export, live health, and history (DESIGN.md §9–10).

    Drives ``--requests`` Playground views (Prev/Next style — revisits
    hit the result cache) under ``obs.enable()`` with request scopes,
    persisting every request summary to the ``--store`` telemetry store,
    then exports: ``--openmetrics`` prints Prometheus/OpenMetrics text
    on stdout (now including ``devicescope_slo_*`` gauges),
    ``--trace-out`` writes Chrome trace-event JSON for Perfetto,
    ``--jsonl-out`` ships the structured log, and ``--watch`` renders a
    compact dashboard after every request instead (``--iterations N``
    caps the refreshes; Ctrl-C exits cleanly). With no flags, prints
    the dashboard once at the end. ``--history`` skips the workload and
    renders attainment/latency trends across past runs from the store;
    ``--compact`` folds sealed segments into per-period rollups first.
    """
    import json as json_mod
    import time as time_mod

    from .. import obs
    from ..obs.report import format_dashboard, format_history

    if args.history or args.compact:
        store = _open_store(args)
        if store is None:
            print("--history/--compact need a store (drop --no-store)")
            return 1
        try:
            if args.compact:
                compacted = store.compact()
                print(
                    f"compacted {compacted['segments_compacted']} segments "
                    f"into {len(compacted['periods'])} period rollups"
                )
            if args.history:
                print(format_history(store.history()))
        finally:
            store.close()
        return 0

    sleep = _WATCH_SLEEP if _WATCH_SLEEP is not None else time_mod.sleep
    playground = _telemetry_playground(args, workers=max(args.workers, 1))
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    store = _open_store(args)
    if store is not None:
        obs.set_store(store)
    chatty = not args.openmetrics  # keep stdout scrape-clean otherwise
    profiler = None
    if args.pprof or args.pprof_out:
        # A tight interval: the workload only runs for seconds, and the
        # flamegraph needs enough samples to say anything.
        profiler = obs.ContinuousProfiler(interval_s=0.005)
        profiler.start()

    def dashboard() -> str:
        return format_dashboard(
            obs.slo_tracker.snapshot(),
            obs.registry.snapshot(),
            playground.cache.stats() if playground.cache is not None else None,
            status=_derived_status(),
        )

    try:
        n_requests = max(args.requests, 1)
        refreshes = n_requests if args.iterations is None else args.iterations
        try:
            for i in range(n_requests):
                # Forward to the end, then bounce back: revisits exercise
                # the result cache so hits/misses both show up attributed.
                view = playground.view()
                if view.has_next and i < n_requests // 2:
                    playground.state.advance(playground.n_windows, +1)
                else:
                    playground.state.advance(playground.n_windows, -1)
                if args.watch and i < refreshes:
                    print(dashboard())
                    print()
                    if args.interval > 0 and i < min(n_requests, refreshes) - 1:
                        sleep(args.interval)
        except KeyboardInterrupt:
            if chatty:
                print("\nwatch interrupted; flushing telemetry")
        if args.trace_out:
            with open(args.trace_out, "w") as fh:
                json_mod.dump(obs.to_chrome_trace(obs.tracer), fh)
            if chatty:
                print(f"chrome trace written to {args.trace_out}")
        if args.jsonl_out:
            with open(args.jsonl_out, "w") as fh:
                fh.write(obs.to_jsonl(obs.log.events()))
            if chatty:
                print(f"event log written to {args.jsonl_out}")
        if profiler is not None:
            profiler.stop()
            lines = profiler.collapsed().splitlines()
            if args.pprof_out:
                with open(args.pprof_out, "w") as fh:
                    for line in lines:
                        fh.write(line + "\n")
                if chatty:
                    print(
                        f"collapsed stacks ({len(lines)}) written "
                        f"to {args.pprof_out}"
                    )
            elif chatty:
                for line in lines[:40]:
                    print(line)
        if args.flight and chatty:
            from ..obs.report import format_flight

            print(
                format_flight(
                    {
                        "stats": obs.flight_recorder.stats(),
                        "entries": obs.flight_recorder.entries(),
                    }
                )
            )
        if args.openmetrics:
            print(
                obs.to_openmetrics(
                    obs.registry.snapshot(), slo=obs.slo_tracker.snapshot()
                ),
                end="",
            )
        elif not args.watch:
            print(dashboard())
    finally:
        if profiler is not None:
            profiler.stop()
        if store is not None:
            obs.set_store(None)
            store.close()
        if not was_enabled:
            obs.disable()
    return 0


def cmd_quality(args) -> int:
    """Model-quality monitoring report (DESIGN.md §10).

    Builds a training-free model over a seeded synthetic dataset,
    freezes a **reference profile** and a canary probe from clean
    known-answer windows, then drives live traffic per ``--scenario``:

    * ``clean`` — interleaved windows from the same distribution; drift
      stays ``ok`` (the control).
    * ``shifted`` — degraded sampling (NaN bursts), a collapsed power
      scale, and a changed appliance duty cycle; the PSI/KS detectors
      must flip the per-appliance alert to ``alert``.

    ``--perturb-checkpoint`` corrupts the weights *after* canary
    capture, modeling a silent checkpoint swap the input monitors
    cannot see. Exit code: 0 ok, 1 warn, 2 alert.
    """
    import json as json_mod

    from .. import obs, quality
    from ..core import CamAL
    from ..datasets import Standardizer, build_dataset
    from ..datasets.windows import extract_windows
    from ..models import ResNetEnsemble

    dataset = build_dataset(
        args.profile, seed=args.seed, n_houses=2, days_per_house=(3, 4)
    )
    aggregate = np.nan_to_num(dataset.houses[0].aggregate, nan=0.0)
    windows, _ = extract_windows(aggregate, 128, 64)
    ensemble = ResNetEnsemble(
        (5, 9) if args.fast else (5, 7, 9, 15),
        n_filters=(4, 8, 8),
        seed=args.seed,
    )
    ensemble.eval()
    model = CamAL(ensemble, Standardizer.fit(windows))

    # Interleave so reference and clean-live draw the same distribution.
    reference_windows = windows[::2]
    live_windows = windows[1::2].copy()
    if args.scenario == "shifted":
        rng = np.random.default_rng(args.seed + 1)
        live_windows *= 0.1  # collapsed power scale (bad calibration)
        live_windows[:, 40:80] += 30.0  # changed duty cycle
        for row in live_windows[::2]:  # degraded sampling: NaN bursts
            start = int(rng.integers(0, row.size - 16))
            row[start : start + 12] = np.nan

    monitor = quality.install(
        quality.QualityMonitor(escalate_after=2, cooldown_s=0.0)
    )
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    # This is an offline batch workload — hold it to a batch latency
    # objective, not the interactive-view default.
    previous_objective = obs.slo_tracker.objective_ms
    obs.slo_tracker.objective_ms = 10_000.0
    store = _open_store(args)
    if store is not None:
        obs.set_store(store)
    try:
        monitor.build_reference(args.appliance, model, reference_windows)
        probe = quality.CanaryProbe.capture(model, reference_windows[:8])
        monitor.add_canary(args.appliance, probe)
        if args.perturb_checkpoint:
            rng = np.random.default_rng(args.seed + 2)
            for parameter in ensemble.parameters():
                parameter.data += rng.normal(0.0, 0.5, parameter.data.shape)
        # Live traffic: attributed localizations in request scopes, in
        # batches so the alert machine sees consecutive evidence.
        batches = np.array_split(live_windows, max(args.evaluations, 1))
        report = monitor.report()
        for batch in batches:
            if not batch.size:
                continue
            with obs.request(
                kind="quality", scenario=args.scenario,
                appliance=args.appliance,
            ):
                model.localize_watts(batch, appliance=args.appliance)
            report = monitor.evaluate({args.appliance: model})
        overall = monitor.status()["overall"]
        if args.json:
            print(json_mod.dumps(report, indent=2, default=float))
        else:
            print(quality.format_report(report))
            print(f"\nhealth status: {_derived_status().upper()}")
    finally:
        obs.slo_tracker.objective_ms = previous_objective
        if store is not None:
            obs.set_store(None)
            store.close()
        if not was_enabled:
            obs.disable()
        quality.uninstall()
    return {"ok": 0, "warn": 1, "alert": 2}[overall]


def _http_json(
    url: str,
    method: str = "GET",
    body: dict | None = None,
    tenant: str | None = None,
    timeout: float = 30.0,
):
    """Tiny JSON client for the smoke scenario (stdlib only).

    Returns ``(status, payload, headers)`` and treats HTTP error codes
    as data, not exceptions — the smoke asserts on 503s.
    """
    import json as json_mod
    import urllib.error
    import urllib.request

    data = None
    req = urllib.request.Request(url, method=method)
    if body is not None:
        data = json_mod.dumps(body).encode("utf-8")
        req.add_header("Content-Type", "application/json")
    if tenant is not None:
        req.add_header("X-Tenant-Id", tenant)
    try:
        with urllib.request.urlopen(req, data=data, timeout=timeout) as resp:
            raw = resp.read()
            status, headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as err:
        raw = err.read()
        status, headers = err.code, dict(err.headers)
    try:
        payload = json_mod.loads(raw) if raw else {}
    except json_mod.JSONDecodeError:
        payload = {"raw": raw.decode("utf-8", "replace")}
    return status, payload, headers


def _serve_smoke(args, server) -> int:
    """The CI serve-smoke scenario over a real socket (DESIGN.md §11):
    CRUD → ingest → device attach → detect/localize (cache revisit) →
    ``/metrics`` parseability → ``/health`` consistency with the CLI's
    derived status → induced SLO burn answered with 503 + Retry-After
    instead of a crash → tenant isolation."""
    import urllib.request

    from .. import obs
    from .session import STATUS_LEVELS, process_status

    checks: list[tuple[str, bool]] = []
    ok = lambda label, passed: checks.append((label, bool(passed)))  # noqa: E731
    rng = np.random.default_rng(args.seed)
    watts = (rng.uniform(80, 240, size=256) + 40.0).tolist()
    watts[60:72] = [2600.0] * 12  # one kettle-shaped spike
    with server.running():
        base = server.url
        status, house, _ = _http_json(
            f"{base}/houses", "POST",
            {"house_id": "house-1", "step_s": 60.0}, tenant="smoke-a",
        )
        ok("POST /houses -> 201", status == 201)
        status, listing, _ = _http_json(f"{base}/houses", tenant="smoke-a")
        ok("GET /houses lists it", status == 200 and "house-1" in listing["houses"])
        status, ingest, _ = _http_json(
            f"{base}/houses/house-1/ingest", "POST", {"watts": watts},
            tenant="smoke-a",
        )
        ok("POST ingest -> 200 with n_steps",
           status == 200 and ingest.get("n_steps") == len(watts))
        status, _, _ = _http_json(
            f"{base}/houses/house-1/devices", "POST",
            {"appliance": args.appliance}, tenant="smoke-a",
        )
        ok("POST devices (attach) -> 201", status == 201)
        detect_body = {"appliance": args.appliance, "start": 0, "length": 128}
        status, detect, _ = _http_json(
            f"{base}/houses/house-1/detect", "POST", detect_body,
            tenant="smoke-a",
        )
        ok("POST detect -> 200 with probability",
           status == 200 and "probability" in detect
           and detect.get("cached") is False)
        status, localized, _ = _http_json(
            f"{base}/houses/house-1/localize", "POST", detect_body,
            tenant="smoke-a",
        )
        ok("POST localize -> 200 from cache with intervals",
           status == 200 and localized.get("cached") is True
           and isinstance(localized.get("intervals"), list))
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as resp:
            metrics_ok = resp.status == 200
            content_type = resp.headers.get("Content-Type", "")
            text = resp.read().decode("utf-8")
        ok("GET /metrics is OpenMetrics",
           metrics_ok
           and content_type.startswith("application/openmetrics-text")
           and text.endswith("# EOF\n")
           and "obs_requests_total" in text)
        status, health, _ = _http_json(f"{base}/health")
        ok("GET /health -> 200 with status",
           status == 200 and health.get("status") in STATUS_LEVELS)
        ok("/health status matches the CLI's derived status",
           health.get("status") == process_status())
        # Induced overload: error the SLO window far past the fast-burn
        # threshold; admission must answer 503 + Retry-After, while the
        # operator endpoints keep working.
        for _ in range(64):
            obs.slo_tracker.record(10.0, outcome="error")
        status, shed, headers = _http_json(
            f"{base}/houses/house-1/detect", "POST", detect_body,
            tenant="smoke-a",
        )
        ok("overload -> 503 (not a crash)", status == 503)
        ok("503 carries Retry-After", "Retry-After" in headers)
        status, health, _ = _http_json(f"{base}/health")
        ok("/health still live while shedding",
           status == 200 and health.get("shedding") is True)
        ok("/health agrees with CLI under overload",
           health.get("status") == process_status())
        status, other, _ = _http_json(f"{base}/houses", tenant="smoke-b")
        ok("tenants are isolated (smoke-b sees no houses)",
           status in (200, 503) and other.get("houses", {}) == {})
    failed = [label for label, passed in checks if not passed]
    for label, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
    print("serve-smoke: " + ("PASS" if not failed else "FAIL"))
    return 0 if not failed else 1


def cmd_serve(args) -> int:
    """Run the multi-tenant HTTP service (DESIGN.md §11).

    Builds a training-free model bank (seeded untrained ensembles —
    the serving-shape workload; swap in trained models via
    ``repro.serve.ModelBank.from_models``), enables observability, and
    serves until interrupted. Ctrl-C drains in-flight requests before
    releasing the port. ``--smoke`` runs the CI acceptance scenario on
    an ephemeral port instead and exits 0/1.
    """
    from .. import obs
    from ..serve import build_server

    appliances = (
        tuple(args.appliances) if args.appliances else (args.appliance,)
    )
    was_enabled = obs.enabled()
    obs.enable()  # a blind server is undebuggable; telemetry is the point
    previous_objective = obs.slo_tracker.objective_ms
    obs.slo_tracker.objective_ms = args.objective_ms
    server = build_server(
        host=args.host,
        port=0 if args.smoke else args.port,
        appliances=appliances,
        profile=args.profile,
        seed=args.seed,
        workers=args.workers,
        # Per-tenant trackers must judge latency against the same bar
        # as the global tracker set above, or /health and per-tenant
        # admission would use a different objective than the operator
        # configured.
        slo_objective_ms=args.objective_ms,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        profile_hz=args.profile_hz,
    )
    try:
        if args.smoke:
            return _serve_smoke(args, server)
        batcher = server.service.batcher
        print(f"devicescope serve: listening on {server.url}")
        print(f"  appliances: {', '.join(appliances)}")
        if batcher.enabled:
            print(
                f"  micro-batching: window {batcher.batch_window_ms:g} ms, "
                f"max {batcher.batch_max} windows/sweep"
            )
        else:
            print("  micro-batching: disabled")
        print(f"  try: curl {server.url}/health")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down (draining in-flight requests)")
        finally:
            server.server_close()
        return 0
    finally:
        obs.slo_tracker.objective_ms = previous_objective
        if not was_enabled:
            obs.disable()


def cmd_stream(args) -> int:
    """Simulate a live meter: append chunks, localize incrementally.

    Builds a seeded synthetic feed and a training-free CamAL (the
    serving-shape workload), streams it through
    :class:`repro.stream.LiveStore` + :class:`repro.stream.SlidingCamAL`,
    and prints per-append latency, cache-reuse ratio, and the detected
    intervals of the live window. ``--verify`` additionally
    cold-recomputes every window and asserts the incremental result is
    bit-identical (the ``tests/stream`` contract, live).
    """
    import json
    import time

    from ..core import CamAL
    from ..datasets import Standardizer, build_dataset
    from ..models import ResNetEnsemble
    from ..stream import LiveStore, SlidingCamAL

    if args.chunk < 1 or args.appends < 1 or args.factor < 1:
        print("chunk, appends, and factor must all be >= 1", file=sys.stderr)
        return 2
    kernels = (5, 9) if args.fast else (5, 7, 9, 15)
    filters = (4, 8, 8) if args.fast else (8, 16, 16)
    raw_needed = (args.window + args.chunk * args.appends) * args.factor
    days = raw_needed // 1440 + 2
    dataset = build_dataset(
        args.profile, seed=args.seed, n_houses=1,
        days_per_house=(days, days + 1),
    )
    aggregate = np.nan_to_num(dataset.houses[0].aggregate, nan=0.0)
    feed = np.tile(aggregate, raw_needed // len(aggregate) + 1)[:raw_needed]
    ensemble = ResNetEnsemble(kernels, n_filters=filters, seed=args.seed)
    ensemble.eval()
    model = CamAL(ensemble, Standardizer.fit(feed[None, :]))
    store = LiveStore(
        capacity=max(args.window * 4, args.window + 1), on_full="evict"
    )
    live = SlidingCamAL(
        model, store, window=args.window, appliance=args.appliance
    )
    # Warm up: one full window, then stream the remaining chunks.
    warm = args.window * args.factor
    store.append(feed[:warm], factor=args.factor)
    live.localize()
    log = []
    pos = warm
    for i in range(args.appends):
        chunk = feed[pos : pos + args.chunk * args.factor]
        pos += chunk.size
        store.append(chunk, factor=args.factor)
        t0 = time.perf_counter()
        loc = live.localize()
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        entry = {
            "append": i + 1,
            "window": [loc.start, loc.end],
            "ms": elapsed_ms,
            "reuse_ratio": loc.reuse_ratio,
            "detected": bool(loc.result.detected[0]),
            "on_fraction": float((loc.result.status[0] > 0.5).mean()),
        }
        if args.verify:
            cold = model.localize_watts(
                store.read(loc.start, loc.end - loc.start)[None]
            )
            for field in ("probabilities", "cam", "attention", "status"):
                if not np.array_equal(
                    getattr(loc.result, field), getattr(cold, field)
                ):
                    print(
                        f"BIT-IDENTITY VIOLATION at append {i + 1}: {field}",
                        file=sys.stderr,
                    )
                    return 1
            entry["verified"] = True
        log.append(entry)
    summary = {
        "appliance": args.appliance,
        "window": args.window,
        "chunk": args.chunk,
        "factor": args.factor,
        "appends": args.appends,
        "members": len(ensemble),
        "mean_ms": float(np.mean([e["ms"] for e in log])),
        "lifetime_reuse_ratio": live.reuse_ratio,
        "verified": bool(args.verify),
    }
    if args.json:
        print(json.dumps({"appends": log, "summary": summary}, indent=2))
        return 0
    print(
        f"devicescope stream: {args.appends} appends × {args.chunk} samples "
        f"(factor {args.factor}) over a {args.window}-sample window"
    )
    for e in log:
        mark = " ✓" if e.get("verified") else ""
        print(
            f"  append {e['append']:>3}: window [{e['window'][0]}, "
            f"{e['window'][1]}) in {e['ms']:7.1f} ms, reuse "
            f"{e['reuse_ratio']:.0%}, on {e['on_fraction']:.0%}{mark}"
        )
    print(
        f"mean {summary['mean_ms']:.1f} ms/append, lifetime feature reuse "
        f"{summary['lifetime_reuse_ratio']:.0%}"
        + (", all windows bit-identical to cold recompute" if args.verify else "")
    )
    return 0


def cmd_profile(args) -> int:
    """Trace a representative CamAL inference workload.

    Builds a seeded synthetic house, takes one window of its aggregate
    (1 day by default), and runs CamAL localization under the tracer
    with per-layer profiling attached — no training, so it finishes in
    seconds while exercising the exact inference hot path. Prints the
    nested span tree (all six paper stages), the slowest layers, and
    the metric summaries; ``--json`` emits the same payload as JSON.
    """
    import json

    from .. import obs
    from ..core import CamAL, recommended_config
    from ..datasets import Standardizer, build_dataset
    from ..models import ResNetEnsemble
    from ..obs.report import ascii_report

    samples = {"6h": 360, "12h": 720, "1day": 1440}[args.window]
    kernels = (5, 9) if args.fast else (5, 7, 9, 15)
    days = samples // 1440 + 2
    dataset = build_dataset(
        args.profile, seed=args.seed, n_houses=1,
        days_per_house=(days, days + 1),
    )
    aggregate = np.nan_to_num(dataset.houses[0].aggregate, nan=0.0)
    watts = np.tile(aggregate, max(samples // len(aggregate) + 1, 1))[
        :samples
    ][None, :]
    ensemble = ResNetEnsemble(kernels, n_filters=(8, 16, 16), seed=args.seed)
    ensemble.eval()
    model = CamAL(
        ensemble, Standardizer.fit(watts), recommended_config(args.appliance)
    )
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    try:
        with ensemble.profile() as prof:
            for _ in range(max(args.repeats, 1)):
                model.localize_watts(watts)
        payload = {
            "workload": {
                "profile": args.profile,
                "appliance": args.appliance,
                "window": args.window,
                "samples": samples,
                "repeats": max(args.repeats, 1),
                "members": len(ensemble),
                "seed": args.seed,
            },
            "spans": obs.tracer.to_dicts(),
            "layers": prof.stats(),
            "metrics": obs.registry.snapshot(),
        }
    finally:
        if not was_enabled:
            obs.disable()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(ascii_report(payload, top=args.top))
    if args.out:
        path = write_report(
            args.out,
            f"DeviceScope — profile ({args.profile} / {args.window})",
            profile_sections(payload),
        )
        if not args.json:
            print(f"\nobservability panel written to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "browse": cmd_browse,
        "demo": cmd_demo,
        "benchmark": cmd_benchmark,
        "report": cmd_report,
        "upload": cmd_upload,
        "energy": cmd_energy,
        "faultcheck": cmd_faultcheck,
        "profile": cmd_profile,
        "obs": cmd_obs,
        "quality": cmd_quality,
        "serve": cmd_serve,
        "stream": cmd_stream,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
