"""Streamlit front end — the paper's actual GUI layer (§III).

The published DeviceScope is "a stand-alone web application developed
using Python 3.10 and Streamlit". This module renders the same two
frames on top of the headless engine in this package:

* **Playground** — dataset/house/window selection, Prev/Next paging,
  per-appliance predicted status, per-device ground truth, model
  detection probabilities, example appliance patterns;
* **Benchmark** — metric tables and the label-requirement comparison
  from a saved results directory.

Run (requires ``pip install streamlit``, not available in the offline
test environment — everything here delegates to the fully tested
headless API):

    streamlit run src/repro/app/streamlit_app.py
"""

from __future__ import annotations

import sys

try:  # pragma: no cover - exercised only when streamlit is installed
    import streamlit as st
except ImportError:  # pragma: no cover
    st = None

from ..datasets import APPLIANCE_NAMES, PROFILES
from ..models import TrainConfig
from .benchmark_frame import BenchmarkBrowser
from .session import DeviceScope

REQUIRES_STREAMLIT = (
    "the DeviceScope GUI requires streamlit; install it with "
    "'pip install streamlit' or use the headless CLI: devicescope --help"
)


def require_streamlit() -> None:
    """Raise a clear error when streamlit is unavailable."""
    if st is None:
        raise ImportError(REQUIRES_STREAMLIT)


def bootstrap_session(profile: str, appliance: str) -> DeviceScope:
    """Train-or-reuse the session backing the GUI (cached by streamlit)."""
    return DeviceScope.bootstrap(
        profile=profile,
        appliances=(appliance,),
        window="6h",
        seed=0,
        kernel_sizes=(5, 9),
        n_filters=(8, 16, 16),
        train_config=TrainConfig(epochs=8, seed=0),
    )


def render_playground(session: DeviceScope, appliance: str) -> None:  # pragma: no cover
    """Frame A: the Playground (needs a live streamlit runtime)."""
    require_streamlit()
    playground = session.playground
    playground.state.selected_appliances = [appliance]
    st.subheader("Playground")
    house_id = st.selectbox("Time series", session.browse_dataset.house_ids)
    playground.select_house(house_id)
    window = st.radio("Window length", ["6h", "12h", "1day"], horizontal=True)
    playground.select_window(window)
    col_prev, col_pos, col_next = st.columns([1, 2, 1])
    if col_prev.button("Prev."):
        playground.previous()
    if col_next.button("Next"):
        playground.next()
    view = playground.view()
    col_pos.write(f"window {view.position + 1} / {view.n_windows}")
    st.line_chart(view.watts)
    if view.missing:
        st.warning("Missing meter data in this window — predictions omitted.")
    prediction = view.predictions.get(appliance)
    if prediction is not None:
        st.caption(
            f"{appliance}: p={prediction.probability:.2f} "
            f"(±{prediction.uncertainty:.2f} ensemble disagreement)"
        )
        st.area_chart(prediction.status)
        with st.expander("Per device (ground truth)"):
            if prediction.ground_truth_watts is not None:
                st.line_chart(prediction.ground_truth_watts)
        with st.expander("Model detection probabilities"):
            st.json(prediction.member_probabilities)
        with st.expander("Example appliance patterns"):
            st.line_chart(playground.example_pattern(appliance))


def render_benchmark(results_dir: str) -> None:  # pragma: no cover
    """Frame B: the Benchmark browser (needs a live streamlit runtime)."""
    require_streamlit()
    st.subheader("Benchmark")
    try:
        browser = BenchmarkBrowser.load_dir(results_dir)
    except FileNotFoundError:
        st.info(
            "No saved results; run 'devicescope benchmark --save "
            f"{results_dir}' first."
        )
        return
    dataset = st.selectbox("Dataset", browser.datasets)
    appliance = st.selectbox("Appliance", browser.appliances(dataset))
    kind = st.radio("Measure set", ["detection", "localization"], horizontal=True)
    st.dataframe(browser.table(dataset, appliance, kind))
    try:
        st.caption("Comparison with SotA NILM approaches (labels needed)")
        st.dataframe(browser.label_comparison(dataset, appliance))
    except KeyError:
        pass


def main() -> None:  # pragma: no cover - live GUI entry point
    """Top-level page router (sidebar: Playground / Benchmark)."""
    require_streamlit()
    st.set_page_config(page_title="DeviceScope", layout="wide")
    st.title("DeviceScope")
    page = st.sidebar.radio("Page", ["Playground", "Benchmark"])
    profile = st.sidebar.selectbox("Dataset profile", sorted(PROFILES))
    appliance = st.sidebar.selectbox("Appliance", sorted(APPLIANCE_NAMES))
    if page == "Playground":
        session = st.cache_resource(bootstrap_session)(profile, appliance)
        render_playground(session, appliance)
    else:
        render_benchmark(st.sidebar.text_input("Results dir", "results"))


if __name__ == "__main__":  # pragma: no cover
    if st is None:
        print(REQUIRES_STREAMLIT, file=sys.stderr)
        sys.exit(1)
    main()
