"""Rendering: ASCII sparklines for the CLI and standalone HTML reports.

The real DeviceScope is a Streamlit app; offline we render the same
content — aggregate plot, per-appliance predicted status, per-device
ground truth, probability panel, benchmark tables — as self-contained
HTML (inline SVG, no external assets) and terminal sparklines.
"""

from __future__ import annotations

import html
from pathlib import Path

import numpy as np

from ..eval import METRIC_NAMES
from .playground import WindowView

__all__ = [
    "ascii_series",
    "svg_series",
    "render_window_view",
    "render_table",
    "render_report",
    "write_report",
    "profile_sections",
]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def ascii_series(values: np.ndarray, width: int = 80) -> str:
    """Render a series as a one-line unicode sparkline (NaN → '·')."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if len(values) > width:
        # Block-max downsample so short spikes stay visible.
        n_blocks = width
        edges = np.linspace(0, len(values), n_blocks + 1).astype(int)
        condensed = np.array(
            [
                np.nanmax(values[a:b]) if b > a and not np.all(np.isnan(values[a:b])) else np.nan
                for a, b in zip(edges[:-1], edges[1:])
            ]
        )
        values = condensed
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return "·" * len(values)
    low, high = float(finite.min()), float(finite.max())
    span = high - low if high > low else 1.0
    chars = []
    for value in values:
        if not np.isfinite(value):
            chars.append("·")
        else:
            level = int(round((value - low) / span * (len(_BLOCKS) - 1)))
            chars.append(_BLOCKS[level])
    return "".join(chars)


def svg_series(
    values: np.ndarray,
    width: int = 720,
    height: int = 120,
    color: str = "#1f77b4",
    fill: bool = False,
) -> str:
    """Inline-SVG line chart of one series (NaN splits the path)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) < 2:
        raise ValueError("values must be 1-D with at least 2 samples")
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return f'<svg width="{width}" height="{height}"></svg>'
    low, high = float(finite.min()), float(finite.max())
    span = high - low if high > low else 1.0
    xs = np.linspace(0, width, len(values))
    ys = height - (np.nan_to_num(values, nan=low) - low) / span * (height - 4) - 2
    segments = []
    current: list[str] = []
    for x, y, value in zip(xs, ys, values):
        if np.isfinite(value):
            current.append(f"{x:.1f},{y:.1f}")
        elif current:
            segments.append(current)
            current = []
    if current:
        segments.append(current)
    paths = []
    for segment in segments:
        if len(segment) < 2:
            continue
        points = " ".join(segment)
        if fill:
            first_x = segment[0].split(",")[0]
            last_x = segment[-1].split(",")[0]
            paths.append(
                f'<polygon points="{first_x},{height} {points} '
                f'{last_x},{height}" fill="{color}" opacity="0.35" />'
            )
        else:
            paths.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{color}" stroke-width="1.5" />'
            )
    return (
        f'<svg width="{width}" height="{height}" '
        f'style="background:#fafafa;border:1px solid #ddd">'
        + "".join(paths)
        + "</svg>"
    )


def render_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Dict rows as an HTML table."""
    if not rows:
        return "<p>(no rows)</p>"
    columns = columns or list(rows[0])
    head = "".join(f"<th>{html.escape(str(c))}</th>" for c in columns)
    body_rows = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            text = f"{value:.3f}" if isinstance(value, float) else str(value)
            cells.append(f"<td>{html.escape(text)}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")
    return (
        '<table border="1" cellpadding="4" cellspacing="0">'
        f"<thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body_rows)}</tbody></table>"
    )


def render_window_view(view: WindowView) -> str:
    """The Playground frame (A.1-A.3) as an HTML section."""
    parts = [
        f"<h2>House {html.escape(view.house_id)} — window "
        f"{view.position + 1}/{view.n_windows} ({html.escape(view.window)})</h2>",
        "<h3>Aggregate consumption (W)</h3>",
        svg_series(view.watts, color="#333333"),
    ]
    if view.degraded:
        parts.append(
            "<p><em>The meter store could not be read for this window "
            "(retries exhausted); showing a placeholder.</em></p>"
        )
    elif view.missing:
        parts.append(
            "<p><em>This window contains missing meter data; "
            "predictions are unavailable (omitted subsequence).</em></p>"
        )
    repaired = sorted(
        name for name, pred in view.predictions.items() if pred.repaired
    )
    if repaired:
        parts.append(
            "<p><em>Input defects repaired before localization for: "
            f"{html.escape(', '.join(repaired))}.</em></p>"
        )
    if view.predictions:
        prob_rows = []
        for name, pred in view.predictions.items():
            parts.append(f"<h3>{html.escape(name)} — predicted status</h3>")
            parts.append(
                svg_series(pred.status, height=40, color="#d62728", fill=True)
            )
            if pred.ground_truth_status is not None:
                parts.append(
                    "<h4>Per device: ground truth status</h4>"
                    + svg_series(
                        pred.ground_truth_status,
                        height=40,
                        color="#2ca02c",
                        fill=True,
                    )
                )
            row = {"appliance": name, "ensemble": pred.probability}
            for idx, value in pred.member_probabilities.items():
                row[f"member {idx}"] = value
            prob_rows.append(row)
        parts.append("<h3>Model detection probabilities</h3>")
        parts.append(render_table(prob_rows))
    return "\n".join(parts)


def render_report(title: str, sections: list[str]) -> str:
    """Assemble sections into a self-contained HTML document."""
    body = "\n<hr/>\n".join(sections)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'/>"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:sans-serif;margin:2em;}"
        "table{border-collapse:collapse;}</style>"
        f"</head><body><h1>{html.escape(title)}</h1>\n{body}\n</body></html>"
    )


def write_report(path: str, title: str, sections: list[str]) -> Path:
    """Write an HTML report to disk; returns the path."""
    target = Path(path)
    target.write_text(render_report(title, sections), encoding="utf-8")
    return target


def profile_sections(payload: dict) -> list[str]:
    """Observability panel: span tree, layer timings, metric summaries.

    ``payload`` is the ``devicescope profile --json`` structure. The
    span tree keeps its ASCII rendering (a ``<pre>`` block preserves the
    indentation); tables reuse :func:`render_table`.
    """
    from ..obs.report import format_span_tree, metric_rows

    sections: list[str] = []
    workload = payload.get("workload") or {}
    if workload:
        sections.append(
            "<h2>Profiled workload</h2>" + render_table([workload])
        )
    spans = payload.get("spans") or []
    if spans:
        sections.append(
            "<h2>Span tree (latest run)</h2><pre>"
            + html.escape(format_span_tree(spans[-1]))
            + "</pre>"
        )
    layers = payload.get("layers") or []
    if layers:
        columns = ["layer", "name", "calls", "forward_s", "backward_s", "total_s"]
        sections.append(
            "<h2>Per-layer timings</h2>" + render_table(layers, columns)
        )
    metrics = payload.get("metrics") or {}
    rows = metric_rows(metrics)
    if rows:
        hist_rows = [r for r in rows if r["type"] == "histogram"]
        scalar_rows = [r for r in rows if r["type"] != "histogram"]
        if hist_rows:
            sections.append(
                "<h2>Metric distributions</h2>"
                + render_table(
                    hist_rows,
                    ["metric", "labels", "count", "mean", "min", "max"],
                )
            )
        if scalar_rows:
            sections.append(
                "<h2>Counters and gauges</h2>"
                + render_table(scalar_rows, ["metric", "type", "labels", "value"])
            )
    return sections


def benchmark_sections(browser, dataset: str, appliance: str) -> list[str]:
    """The benchmark frame (B.1-B.2) as HTML sections."""
    sections = []
    for kind in ("detection", "localization"):
        rows = browser.table(dataset, appliance, kind)
        sections.append(
            f"<h2>{html.escape(dataset)} / {html.escape(appliance)} — "
            f"{kind}</h2>"
            + render_table(
                rows, ["method", "supervision", "labels", *METRIC_NAMES]
            )
        )
    try:
        rows = browser.label_comparison(dataset, appliance)
        sections.append(
            "<h2>Labels required for training (Fig. 3 comparison)</h2>"
            + render_table(rows)
        )
    except KeyError:
        pass  # no efficiency sweep stored for this task
    return sections
