"""DeviceScope facade: dataset + trained models + both frames.

``DeviceScope.bootstrap`` reproduces the demo's setup end to end: build
a dataset, split houses (training houses are never browsed — §II.A),
train a CamAL model per requested appliance, and expose the Playground
over the held-out houses plus an empty :class:`BenchmarkBrowser` ready
to ingest results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import CamAL, ResultCache
from ..datasets import SmartMeterDataset, build_dataset, make_windows
from ..models import TrainConfig
from .benchmark_frame import BenchmarkBrowser
from .playground import Playground

__all__ = [
    "DeviceScope",
    "derive_status",
    "process_status",
    "STATUS_LEVELS",
]

#: Health vocabulary, mildest first.
STATUS_LEVELS = ("ok", "degraded", "critical")
_STATUS_RANK = {level: rank for rank, level in enumerate(STATUS_LEVELS)}


def derive_status(
    robust: dict, slo: dict, quality_status: dict | None = None
) -> str:
    """Collapse health sections to one ``ok``/``degraded``/``critical``.

    * SLO: :func:`repro.obs.health_level` verbatim (``degraded`` when the
      objective is missed, ``critical`` at burn rate >= 2).
    * Robust: any recorded degrade/reject counter marks the session
      ``degraded`` — repairs alone are routine and do not.
    * Quality: a ``warn`` overall is ``degraded``; an ``alert`` means the
      model's answers cannot be trusted — ``critical``.
    """
    from .. import obs

    worst = _STATUS_RANK[obs.health_level(slo)]
    for name, metric in robust.items():
        if "degraded" not in name and "reject" not in name:
            continue
        total = sum(s.get("value", 0) for s in metric.get("series", []))
        if total > 0:
            worst = max(worst, _STATUS_RANK["degraded"])
    if quality_status:
        overall = quality_status.get("overall", "ok")
        if overall == "warn":
            worst = max(worst, _STATUS_RANK["degraded"])
        elif overall == "alert":
            worst = max(worst, _STATUS_RANK["critical"])
    return STATUS_LEVELS[worst]


def process_status() -> str:
    """Process-wide health from **every** signal source in one place.

    Folds the global obs/robust/quality state *and* the serve layer's
    per-tenant SLO trackers (when ``repro.serve`` sessions exist)
    through :func:`derive_status`, taking the worst level. This is the
    single source of truth shared by ``DeviceScope`` serving
    (``/health``), ``devicescope obs --watch``, and ``devicescope
    faultcheck`` — the PR 7 regression fix: before it, the CLI derived
    health from the global registry only, so a tenant burning its own
    SLO could report ``critical`` over HTTP while the CLI printed
    ``OK``.
    """
    from .. import obs, quality
    from ..robust import metrics_snapshot

    quality_monitor = quality.monitor()
    quality_status = (
        quality_monitor.status() if quality_monitor is not None else None
    )
    worst = _STATUS_RANK[
        derive_status(
            metrics_snapshot(), obs.slo_tracker.snapshot(), quality_status
        )
    ]
    from ..serve.tenancy import tenant_trackers

    for _tenant_id, tracker in tenant_trackers():
        level = derive_status({}, tracker.snapshot(), None)
        worst = max(worst, _STATUS_RANK[level])
    return STATUS_LEVELS[worst]


@dataclass
class DeviceScope:
    """A fully wired application session."""

    dataset_name: str
    train_dataset: SmartMeterDataset
    browse_dataset: SmartMeterDataset
    models: dict[str, CamAL]
    playground: Playground
    benchmarks: BenchmarkBrowser
    #: Session-wide localization memo — Prev/Next re-renders hit this
    #: instead of re-running the ensemble (hit/miss counters surface
    #: through ``repro.obs`` when enabled).
    cache: ResultCache = field(
        default_factory=lambda: ResultCache(maxsize=256, name="session")
    )

    def health(self) -> dict:
        """Session diagnostics in one dict: a top-level ``status``
        (``ok``/``degraded``/``critical``, see :func:`derive_status`),
        cache stats, every ``robust.*`` counter recorded so far, the
        rolling SLO rollup over request latencies (attainment,
        p50/p95/p99, burn rate), and — when a quality monitor is
        installed — its per-appliance alert states. The robust/SLO
        sections are empty / zero-count when obs is disabled — what the
        GUI's diagnostics pane, ``devicescope faultcheck``, and
        ``devicescope obs --watch`` print."""
        from .. import obs, quality
        from ..robust import metrics_snapshot

        robust = metrics_snapshot()
        slo = obs.slo_tracker.snapshot()
        quality_monitor = quality.monitor()
        quality_status = (
            quality_monitor.status() if quality_monitor is not None else None
        )
        health = {
            "status": derive_status(robust, slo, quality_status),
            "cache": self.cache.stats(),
            "robust": robust,
            "slo": slo,
        }
        if quality_status is not None:
            health["quality"] = quality_status
        return health

    @classmethod
    def bootstrap(
        cls,
        profile: str = "ukdale",
        appliances: tuple[str, ...] = ("kettle",),
        window: str | int = "6h",
        seed: int = 0,
        n_houses: int | None = None,
        days_per_house: tuple[int, int] | None = None,
        kernel_sizes: tuple[int, ...] = (5, 7, 9, 15),
        n_filters: tuple[int, int, int] = (8, 16, 16),
        train_config: TrainConfig | None = None,
        stratify_by: str | None = None,
    ) -> "DeviceScope":
        """Build a session from scratch (dataset → training → frames).

        The train/browse house split is stratified on the first requested
        appliance (or ``stratify_by``) so the browsable houses actually
        contain it.
        """
        dataset = build_dataset(
            profile, seed=seed, n_houses=n_houses, days_per_house=days_per_house
        )
        import numpy as np

        train_ds, browse_ds = dataset.split_houses(
            0.34,
            rng=np.random.default_rng(seed),
            stratify_by=stratify_by or (appliances[0] if appliances else None),
        )
        config = train_config or TrainConfig(epochs=8, seed=seed)
        models: dict[str, CamAL] = {}
        for appliance in appliances:
            windows = make_windows(train_ds, appliance, window)
            models[appliance] = CamAL.train(
                windows,
                kernel_sizes=kernel_sizes,
                n_filters=n_filters,
                train_config=config,
                seed=seed,
            )
        cache = ResultCache(maxsize=256, name="session")
        playground = Playground(browse_ds, models, cache=cache)
        return cls(
            dataset_name=dataset.name,
            train_dataset=train_ds,
            browse_dataset=browse_ds,
            models=models,
            playground=playground,
            benchmarks=BenchmarkBrowser(),
            cache=cache,
        )
