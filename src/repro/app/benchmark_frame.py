"""The Benchmark frame (paper §III, Figure 5 B).

B.1 — browse detection/localization results per dataset × appliance ×
metric; B.2 — compare CamAL with the NILM baselines on the number of
labels their training required. Results are held in memory and can be
persisted to / reloaded from a JSON directory, so the app can browse
precomputed benchmarks without retraining.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..eval import (
    BenchmarkResult,
    LabelEfficiencyResult,
    METRIC_NAMES,
)

__all__ = ["BenchmarkBrowser"]


class BenchmarkBrowser:
    """Stores and queries benchmark + label-efficiency results."""

    def __init__(self) -> None:
        self._benchmarks: dict[tuple[str, str], BenchmarkResult] = {}
        self._efficiency: dict[tuple[str, str], LabelEfficiencyResult] = {}

    # -- ingestion -----------------------------------------------------------

    def add(self, result: BenchmarkResult) -> None:
        self._benchmarks[(result.dataset, result.appliance)] = result

    def add_efficiency(self, result: LabelEfficiencyResult) -> None:
        self._efficiency[(result.dataset, result.appliance)] = result

    # -- discovery --------------------------------------------------------

    @property
    def datasets(self) -> list[str]:
        return sorted({key[0] for key in self._benchmarks})

    def appliances(self, dataset: str) -> list[str]:
        found = sorted(
            appliance
            for (ds, appliance) in self._benchmarks
            if ds == dataset
        )
        if not found:
            raise KeyError(
                f"no benchmark results for dataset {dataset!r}; "
                f"available: {', '.join(self.datasets) or '(none)'}"
            )
        return found

    def get(self, dataset: str, appliance: str) -> BenchmarkResult:
        try:
            return self._benchmarks[(dataset, appliance)]
        except KeyError:
            raise KeyError(
                f"no benchmark for ({dataset!r}, {appliance!r})"
            ) from None

    def get_efficiency(self, dataset: str, appliance: str) -> LabelEfficiencyResult:
        try:
            return self._efficiency[(dataset, appliance)]
        except KeyError:
            raise KeyError(
                f"no label-efficiency result for ({dataset!r}, {appliance!r})"
            ) from None

    # -- B.1: metric tables -----------------------------------------------

    def table(
        self,
        dataset: str,
        appliance: str,
        kind: str = "detection",
        sort_by: str = "f1",
    ) -> list[dict]:
        """Rows sorted by the chosen measure, best first."""
        if sort_by not in METRIC_NAMES:
            raise KeyError(
                f"unknown measure {sort_by!r}; available: "
                f"{', '.join(METRIC_NAMES)}"
            )
        rows = self.get(dataset, appliance).to_rows(kind)
        return sorted(rows, key=lambda row: row[sort_by], reverse=True)

    # -- B.2: label-requirement comparison --------------------------------

    def label_comparison(self, dataset: str, appliance: str) -> list[dict]:
        """One row per method: labels needed and best localization F1."""
        result = self.get_efficiency(dataset, appliance)
        rows = []
        for curve in result.curves.values():
            if not curve.points:
                continue
            best = max(curve.points, key=lambda p: p.f1)
            rows.append(
                {
                    "method": curve.display_name,
                    "supervision": curve.supervision,
                    "best_f1": best.f1,
                    "labels_at_best": best.labels,
                    "min_labels": min(p.labels for p in curve.points),
                }
            )
        return sorted(rows, key=lambda row: row["best_f1"], reverse=True)

    # -- persistence ------------------------------------------------------

    def save_dir(self, directory: str | os.PathLike) -> None:
        """Write every stored result as one JSON file per task."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for (ds, appliance), result in self._benchmarks.items():
            path = directory / f"benchmark_{ds}_{appliance}.json"
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(result.to_dict(), handle, indent=2)
        for (ds, appliance), result in self._efficiency.items():
            path = directory / f"efficiency_{ds}_{appliance}.json"
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(result.to_dict(), handle, indent=2)

    @classmethod
    def load_dir(cls, directory: str | os.PathLike) -> "BenchmarkBrowser":
        """Rebuild a browser from :meth:`save_dir` output."""
        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"no such results directory: {directory}")
        browser = cls()
        for path in sorted(directory.glob("benchmark_*.json")):
            with open(path, encoding="utf-8") as handle:
                browser.add(BenchmarkResult.from_dict(json.load(handle)))
        for path in sorted(directory.glob("efficiency_*.json")):
            with open(path, encoding="utf-8") as handle:
                browser.add_efficiency(
                    LabelEfficiencyResult.from_dict(json.load(handle))
                )
        return browser
