"""The DeviceScope application layer (paper §III-IV).

Headless implementation of the demo system's two frames — the
Playground (window browsing, per-device view, detection probabilities)
and the Benchmark browser — plus ASCII/HTML rendering and a CLI.
"""

from .benchmark_frame import BenchmarkBrowser
from .guessing import GuessGame, GuessOutcome
from .playground import AppliancePrediction, Playground, WindowView
from .render import (
    ascii_series,
    benchmark_sections,
    render_report,
    render_table,
    render_window_view,
    svg_series,
    write_report,
)
from .session import DeviceScope
from .state import SessionState

__all__ = [
    "SessionState",
    "Playground",
    "WindowView",
    "AppliancePrediction",
    "BenchmarkBrowser",
    "GuessGame",
    "GuessOutcome",
    "DeviceScope",
    "ascii_series",
    "svg_series",
    "render_table",
    "render_window_view",
    "render_report",
    "write_report",
    "benchmark_sections",
]
