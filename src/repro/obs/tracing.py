"""Span-based tracing for the CamAL / training / benchmark hot paths.

Usage::

    with obs.span("camal.localize", n_windows=16) as sp:
        with obs.span("camal.ensemble_forward"):
            ...
        sp.set(detected=int(detected.sum()))

Spans nest via a thread-local stack; completed *root* spans land in a
ring buffer (bounded retention) and export as plain dicts / JSON. Each
span records wall time and — when :mod:`tracemalloc` is tracing — an
estimate of net memory allocated inside the span, which for this numpy
codebase is dominated by array allocations (numpy routes its buffers
through the tracemalloc domain).

When observability is disabled (:mod:`repro.obs.config`), ``span()``
returns a shared no-op context manager: one flag check, no allocation,
so instrumented code pays nothing.
"""

from __future__ import annotations

import json
import threading
import time
import tracemalloc
from collections import deque

from . import config

__all__ = ["Span", "Tracer", "NOOP_SPAN"]


class Span:
    """One timed region; a node in the trace tree."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "duration_s",
        "error",
        "alloc_bytes",
        "_t0",
        "_mem0",
    )

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.duration_s = 0.0
        self.error: str | None = None
        self.alloc_bytes: int | None = None
        self._t0 = 0.0
        self._mem0 = 0

    def set(self, **attrs: object) -> None:
        """Attach attributes after entry (counts, shapes, outcomes)."""
        self.attrs.update(attrs)

    def find(self, name: str) -> "Span | None":
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "duration_s": self.duration_s}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.alloc_bytes is not None:
            out["alloc_bytes"] = self.alloc_bytes
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.2f}ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Reusable, stateless stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        pass

    def find(self, name: str) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that opens/closes one real span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._span = Span(name, attrs)

    def __enter__(self) -> Span:
        span = self._span
        self._tracer._stack().append(span)
        if tracemalloc.is_tracing():
            span._mem0 = tracemalloc.get_traced_memory()[0]
        span._t0 = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - span._t0
        if tracemalloc.is_tracing():
            span.alloc_bytes = tracemalloc.get_traced_memory()[0] - span._mem0
        if exc_type is not None:
            span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._close(span)
        return False


class Tracer:
    """Owns the thread-local span stacks and the root-span ring buffer."""

    def __init__(self, max_roots: int = 256):
        if max_roots < 1:
            raise ValueError("max_roots must be >= 1")
        self.max_roots = max_roots
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self._dropped = 0

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a span (no-op context manager while disabled)."""
        if not config._ENABLED:
            return NOOP_SPAN
        return _SpanContext(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _close(self, span: Span) -> None:
        stack = self._stack()
        # The closing span is on top unless user code misused the API;
        # remove it wherever it is so exceptions can't wedge the stack.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                if len(self._roots) == self._roots.maxlen:
                    self._dropped += 1
                self._roots.append(span)

    # -- retrieval / export -----------------------------------------------

    def roots(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    @property
    def dropped(self) -> int:
        """Roots evicted from the ring buffer since the last reset."""
        with self._lock:
            return self._dropped

    def find(self, name: str) -> Span | None:
        """Newest span anywhere in the retained trees with this name."""
        for root in reversed(self.roots()):
            found = root.find(name)
            if found is not None:
                return found
        return None

    def to_dicts(self) -> list[dict]:
        return [root.to_dict() for root in self.roots()]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
            self._dropped = 0
        self._local = threading.local()
