"""Span-based tracing for the CamAL / training / benchmark hot paths.

Usage::

    with obs.span("camal.localize", n_windows=16) as sp:
        with obs.span("camal.ensemble_forward"):
            ...
        sp.set(detected=int(detected.sum()))

Spans nest via a thread-local stack; completed *root* spans land in a
ring buffer (bounded retention, default 10k roots, resizable with
:meth:`Tracer.set_capacity`) and export as plain dicts / JSON. Each
span records wall time and — when :mod:`tracemalloc` is tracing — an
estimate of net memory allocated inside the span, which for this numpy
codebase is dominated by array allocations (numpy routes its buffers
through the tracemalloc domain).

Spans additionally carry correlation identity: a process-unique
``span_id``, the ``parent_id`` of the enclosing span (tracked through a
:mod:`contextvars` variable so it survives ``copy_context()`` dispatch
into worker threads), the ``request_id`` of the active
``obs.request(...)`` scope, the emitting thread id, and a
``perf_counter`` start timestamp — everything the Chrome-trace exporter
(:func:`repro.obs.export.to_chrome_trace`) needs to lay spans out on
per-thread tracks.

When observability is disabled (:mod:`repro.obs.config`), ``span()``
returns a shared no-op context manager: one flag check, no allocation,
so instrumented code pays nothing.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
import tracemalloc
from collections import deque

from . import config, context

__all__ = ["Span", "Tracer", "NOOP_SPAN"]

#: Process-unique span id allocation (atomic under the GIL).
_SPAN_IDS = itertools.count(1)

#: Id of the innermost open span in the *current context* — unlike the
#: tracer's thread-local stack this propagates through
#: ``contextvars.copy_context()``, so spans opened on worker threads
#: know their logical parent even though they are physical roots there.
_ACTIVE_SPAN_ID: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)


class Span:
    """One timed region; a node in the trace tree."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "duration_s",
        "error",
        "alloc_bytes",
        "span_id",
        "parent_id",
        "request_id",
        "trace_id",
        "tid",
        "start_s",
        "_t0",
        "_mem0",
    )

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.duration_s = 0.0
        self.error: str | None = None
        self.alloc_bytes: int | None = None
        self.span_id = 0
        self.parent_id: int | None = None
        self.request_id: str | None = None
        self.trace_id: str | None = None
        self.tid = 0
        self.start_s = 0.0
        self._t0 = 0.0
        self._mem0 = 0

    def set(self, **attrs: object) -> None:
        """Attach attributes after entry (counts, shapes, outcomes)."""
        self.attrs.update(attrs)

    def find(self, name: str) -> "Span | None":
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "duration_s": self.duration_s,
            "span_id": self.span_id,
            "tid": self.tid,
            "start_s": self.start_s,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.alloc_bytes is not None:
            out["alloc_bytes"] = self.alloc_bytes
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def walk(self):
        """Yield self and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.2f}ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Reusable, stateless stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        pass

    def find(self, name: str) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that opens/closes one real span."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._span = Span(name, attrs)
        self._token = None

    def __enter__(self) -> Span:
        span = self._span
        span.span_id = next(_SPAN_IDS)
        span.tid = threading.get_ident()
        span.parent_id = _ACTIVE_SPAN_ID.get()
        request = context.current_request()
        if request is not None:
            span.request_id = request.request_id
            span.trace_id = getattr(request, "trace_id", None) or None
        self._token = _ACTIVE_SPAN_ID.set(span.span_id)
        self._tracer._stack().append(span)
        if tracemalloc.is_tracing():
            span._mem0 = tracemalloc.get_traced_memory()[0]
        span._t0 = time.perf_counter()
        span.start_s = span._t0
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - span._t0
        if tracemalloc.is_tracing():
            span.alloc_bytes = tracemalloc.get_traced_memory()[0] - span._mem0
        if exc_type is not None:
            span.error = f"{exc_type.__name__}: {exc}"
        if self._token is not None:
            _ACTIVE_SPAN_ID.reset(self._token)
            self._token = None
        self._tracer._close(span)
        return False


class Tracer:
    """Owns the thread-local span stacks and the root-span ring buffer."""

    #: Default root-span retention — bounds telemetry memory in a
    #: long-lived serving process (each root is one request-ish tree).
    DEFAULT_MAX_ROOTS = 10_000

    def __init__(self, max_roots: int = DEFAULT_MAX_ROOTS):
        if max_roots < 1:
            raise ValueError("max_roots must be >= 1")
        self.max_roots = max_roots
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self._dropped = 0

    def set_capacity(self, max_roots: int) -> None:
        """Resize the root ring buffer, keeping the newest roots."""
        if max_roots < 1:
            raise ValueError("max_roots must be >= 1")
        with self._lock:
            self.max_roots = max_roots
            self._roots = deque(self._roots, maxlen=max_roots)

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a span (no-op context manager while disabled)."""
        if not config._ENABLED:
            return NOOP_SPAN
        return _SpanContext(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _close(self, span: Span) -> None:
        stack = self._stack()
        # The closing span is on top unless user code misused the API;
        # remove it wherever it is so exceptions can't wedge the stack.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                if len(self._roots) == self._roots.maxlen:
                    self._dropped += 1
                self._roots.append(span)
            # Feed completed root trees to the flight recorder outside
            # the ring lock — it buffers them per request until the
            # request scope closes and retention is decided.
            if span.request_id is not None and config.flight_enabled():
                from . import flight

                flight.recorder.add_root(span)

    # -- retrieval / export -----------------------------------------------

    def roots(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    @property
    def dropped(self) -> int:
        """Roots evicted from the ring buffer since the last reset."""
        with self._lock:
            return self._dropped

    def find(self, name: str) -> Span | None:
        """Newest span anywhere in the retained trees with this name."""
        for root in reversed(self.roots()):
            found = root.find(name)
            if found is not None:
                return found
        return None

    def all_spans(self) -> list[Span]:
        """Every retained span (roots and descendants), flattened."""
        return [span for root in self.roots() for span in root.walk()]

    def request_spans(self, request_id: str) -> list[Span]:
        """All spans stamped with ``request_id`` — the request's tree,
        flattened (worker-thread spans included; reassemble parent/child
        structure through ``span_id``/``parent_id``)."""
        return [
            span
            for span in self.all_spans()
            if span.request_id == request_id
        ]

    def to_dicts(self) -> list[dict]:
        return [root.to_dict() for root in self.roots()]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
            self._dropped = 0
        self._local = threading.local()
