"""Request-scoped telemetry context (``obs.request``).

DeviceScope is interactive: one Prev/Next click triggers a full
detect+localize pass, several cache lookups, and possibly retries and
repairs. :class:`RequestContext` ties all of that telemetry back to the
click that caused it — every span, event, and warning emitted inside an
``obs.request(...)`` scope is stamped with the scope's ``request_id``.

The context rides on :mod:`contextvars`, so it follows ``await``-style
and thread-dispatched execution as long as the dispatcher copies the
caller's context (``contextvars.copy_context()``) — which the fast-path
worker fan-out in :meth:`repro.models.ResNetEnsemble.member_outputs`
does.

Semantics:

* **Zero-cost when disabled**: ``obs.request(...)`` returns a shared
  no-op context object and stamps nothing.
* **Reuse, don't nest**: entering ``obs.request`` while a request is
  already active *joins* the active request instead of allocating a new
  id. Library layers (``Playground.view``, ``CamAL.localize``,
  ``SlidingWindowLocalizer``) can therefore all declare request scopes;
  the outermost caller wins and gets unified attribution.
* **Latency + verdict recording**: when the outermost scope exits, the
  request's wall time and outcome (``ok`` / ``degraded`` / ``error``)
  are recorded into the ``obs.request_seconds`` histogram, the
  ``obs.requests_total`` counter, a structured ``request`` log event,
  and the global :class:`~repro.obs.slo.SloTracker`.
"""

from __future__ import annotations

import contextvars
import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from . import config

__all__ = [
    "RequestContext",
    "current_request",
    "request",
    "reset",
    "NOOP_REQUEST",
]

#: Tuple-of-pairs key identifying one (name, labels) warning signature.
_WarningKey = tuple


@dataclass
class RequestContext:
    """One user-facing unit of work (a view render, a localize call)."""

    request_id: str
    kind: str
    tags: dict = field(default_factory=dict)
    outcome: str = "ok"  # ok | degraded | error
    #: First log record per (warning name, labels) — repeats bump the
    #: record's ``count`` instead of flooding the event buffer.
    warning_records: dict[_WarningKey, dict] = field(default_factory=dict)

    def mark_degraded(self) -> None:
        """Downgrade the request verdict (errors are never overwritten)."""
        if self.outcome == "ok":
            self.outcome = "degraded"

    def set_outcome(self, outcome: str) -> None:
        """Override the verdict (e.g. ``client_error`` for handled 4xx).

        Unlike the exception path, a set outcome survives a normal scope
        exit — the serve layer uses it to record caller-caused failures
        without spending the service's error budget.
        """
        self.outcome = str(outcome)

    def set_tags(self, **tags: object) -> None:
        self.tags.update(tags)


class _NoopRequest:
    """Shared stand-in yielded while observability is disabled."""

    __slots__ = ()
    request_id = None
    kind = ""
    outcome = "ok"

    def mark_degraded(self) -> None:
        pass

    def set_outcome(self, outcome: str) -> None:
        pass

    def set_tags(self, **tags: object) -> None:
        pass


NOOP_REQUEST = _NoopRequest()

_CURRENT: contextvars.ContextVar[RequestContext | None] = contextvars.ContextVar(
    "repro_obs_request", default=None
)

_IDS = itertools.count(1)


def current_request() -> RequestContext | None:
    """The active :class:`RequestContext`, or None outside any scope."""
    return _CURRENT.get()


def new_request_id(kind: str) -> str:
    """Deterministic per-process id: ``<kind>-<sequence>``."""
    return f"{kind}-{next(_IDS):06d}"


@contextmanager
def request(kind: str = "request", **tags: object) -> Iterator[RequestContext]:
    """Open (or join) a request scope; see the module docstring."""
    if not config._ENABLED:
        yield NOOP_REQUEST  # type: ignore[misc]
        return
    active = _CURRENT.get()
    if active is not None:
        # Join the enclosing request: one click, one id.
        yield active
        return
    ctx = RequestContext(
        request_id=new_request_id(kind), kind=kind, tags=dict(tags)
    )
    token = _CURRENT.set(ctx)
    start = time.perf_counter()
    try:
        yield ctx
    except Exception:
        ctx.outcome = "error"
        raise
    finally:
        duration_s = time.perf_counter() - start
        _CURRENT.reset(token)
        _finish(ctx, duration_s)


def _finish(ctx: RequestContext, duration_s: float) -> None:
    """Record the completed request (outermost scope only)."""
    if not config._ENABLED:  # disabled mid-request: drop silently
        return
    # Imported lazily: the package __init__ builds the singletons this
    # records into, and may still be executing at module import time.
    from . import log, slo
    from .. import obs

    obs.registry.histogram(
        "obs.request_seconds",
        help="wall time of request scopes (obs.request)",
    ).observe(duration_s, kind=ctx.kind)
    obs.registry.counter(
        "obs.requests_total",
        help="completed request scopes by kind and outcome",
    ).inc(kind=ctx.kind, outcome=ctx.outcome)
    slo.tracker.record(duration_s, outcome=ctx.outcome)
    log.event(
        "request",
        request_id=ctx.request_id,
        request_kind=ctx.kind,
        duration_s=duration_s,
        outcome=ctx.outcome,
        **ctx.tags,
    )
    _flush_to_store(ctx, duration_s)


def _flush_to_store(ctx: RequestContext, duration_s: float) -> None:
    """Persist the request summary into the installed telemetry store.

    Storage is best-effort: a full disk or revoked permissions must
    degrade to a counter bump, never break the request being recorded.
    """
    from . import store as store_mod

    telemetry_store = store_mod.active_store()
    if telemetry_store is None:
        return
    try:
        telemetry_store.record_request(
            request_id=ctx.request_id,
            kind=ctx.kind,
            duration_s=duration_s,
            outcome=ctx.outcome,
            tags=ctx.tags,
        )
    except OSError:
        from .. import obs

        obs.registry.counter(
            "obs.store_append_failures_total",
            help="telemetry store appends dropped on disk errors",
        ).inc()


def reset() -> None:
    """Restart id allocation (``obs.reset`` calls this).

    An in-flight request keeps its context object — resetting inside an
    active scope is not supported and simply renumbers future requests.
    """
    global _IDS
    _IDS = itertools.count(1)
