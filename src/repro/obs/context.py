"""Request-scoped telemetry context (``obs.request``).

DeviceScope is interactive: one Prev/Next click triggers a full
detect+localize pass, several cache lookups, and possibly retries and
repairs. :class:`RequestContext` ties all of that telemetry back to the
click that caused it — every span, event, and warning emitted inside an
``obs.request(...)`` scope is stamped with the scope's ``request_id``.

The context rides on :mod:`contextvars`, so it follows ``await``-style
and thread-dispatched execution as long as the dispatcher copies the
caller's context (``contextvars.copy_context()``) — which the fast-path
worker fan-out in :meth:`repro.models.ResNetEnsemble.member_outputs`
does.

Semantics:

* **Zero-cost when disabled**: ``obs.request(...)`` returns a shared
  no-op context object and stamps nothing.
* **Reuse, don't nest**: entering ``obs.request`` while a request is
  already active *joins* the active request instead of allocating a new
  id. Library layers (``Playground.view``, ``CamAL.localize``,
  ``SlidingWindowLocalizer``) can therefore all declare request scopes;
  the outermost caller wins and gets unified attribution.
* **Latency + verdict recording**: when the outermost scope exits, the
  request's wall time and outcome (``ok`` / ``degraded`` / ``error``)
  are recorded into the ``obs.request_seconds`` histogram, the
  ``obs.requests_total`` counter, a structured ``request`` log event,
  and the global :class:`~repro.obs.slo.SloTracker`.
"""

from __future__ import annotations

import contextvars
import itertools
import re
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from . import config

__all__ = [
    "RequestContext",
    "current_request",
    "request",
    "reset",
    "NOOP_REQUEST",
    "new_trace_id",
    "new_span_id_hex",
    "parse_traceparent",
    "parse_tracestate",
    "format_traceparent",
    "record_rejected",
]

#: Tuple-of-pairs key identifying one (name, labels) warning signature.
_WarningKey = tuple

# -- W3C Trace Context (traceparent / tracestate) ---------------------------
#
# ``traceparent: <version>-<trace-id>-<parent-id>-<flags>`` with version
# and flags as 2 lowercase hex digits, trace-id as 32 and parent-id as
# 16 — all-zero trace/parent ids are explicitly invalid per the spec.
# Parsing is strict-but-forgiving the way the spec asks: a malformed
# header is *ignored* (the server starts a fresh trace), never an error.

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<parent_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})(?P<rest>-.*)?$"
)

#: ``tracestate`` values past this size are dropped wholesale (the spec
#: allows discarding the header when it cannot be stored verbatim).
MAX_TRACESTATE_LEN = 512


def new_trace_id() -> str:
    """A fresh 128-bit W3C trace id (32 lowercase hex chars)."""
    return uuid.uuid4().hex


def new_span_id_hex() -> str:
    """A fresh 64-bit W3C span/parent id (16 lowercase hex chars)."""
    return uuid.uuid4().hex[:16]


def parse_traceparent(header: object) -> "tuple[str, str] | None":
    """``(trace_id, parent_span_id)`` from a ``traceparent`` header.

    Returns None for anything invalid: wrong field sizes, uppercase hex,
    version ``ff`` (forbidden), an all-zero trace or parent id, or extra
    fields on a version-00 header (future versions may append fields, so
    they are accepted with the known prefix).
    """
    if not isinstance(header, str):
        return None
    match = _TRACEPARENT.match(header.strip())
    if match is None:
        return None
    version = match.group("version")
    if version == "ff":
        return None
    if version == "00" and match.group("rest"):
        return None
    trace_id = match.group("trace_id")
    parent_id = match.group("parent_id")
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id, parent_id


def parse_tracestate(header: object) -> "str | None":
    """Pass a ``tracestate`` header through, or drop it.

    The value is vendor-opaque — we never interpret it, only echo it on
    the response so downstream vendors keep their correlation state.
    Oversized or non-string values are dropped (returns None).
    """
    if not isinstance(header, str):
        return None
    value = header.strip()
    if not value or len(value) > MAX_TRACESTATE_LEN:
        return None
    return value


def format_traceparent(trace_id: str, span_id_hex: str) -> str:
    """A version-00, sampled ``traceparent`` for response headers."""
    return f"00-{trace_id}-{span_id_hex}-01"


@dataclass
class RequestContext:
    """One user-facing unit of work (a view render, a localize call)."""

    request_id: str
    kind: str
    tags: dict = field(default_factory=dict)
    outcome: str = "ok"  # ok | degraded | error
    #: W3C trace identity: ``trace_id`` is the 32-hex id this request
    #: belongs to (client-supplied via ``traceparent`` or generated at
    #: scope entry), ``parent_span_id`` the client's 16-hex span id (if
    #: any), and ``span_id_hex`` this request's own 16-hex id — the one
    #: the serve layer echoes in the response ``traceparent``.
    trace_id: str = ""
    parent_span_id: "str | None" = None
    span_id_hex: str = ""
    #: First log record per (warning name, labels) — repeats bump the
    #: record's ``count`` instead of flooding the event buffer.
    warning_records: dict[_WarningKey, dict] = field(default_factory=dict)

    def mark_degraded(self) -> None:
        """Downgrade the request verdict (errors are never overwritten)."""
        if self.outcome == "ok":
            self.outcome = "degraded"

    def set_outcome(self, outcome: str) -> None:
        """Override the verdict (e.g. ``client_error`` for handled 4xx).

        Unlike the exception path, a set outcome survives a normal scope
        exit — the serve layer uses it to record caller-caused failures
        without spending the service's error budget.
        """
        self.outcome = str(outcome)

    def set_tags(self, **tags: object) -> None:
        self.tags.update(tags)


class _NoopRequest:
    """Shared stand-in yielded while observability is disabled."""

    __slots__ = ()
    request_id = None
    kind = ""
    outcome = "ok"

    def mark_degraded(self) -> None:
        pass

    def set_outcome(self, outcome: str) -> None:
        pass

    def set_tags(self, **tags: object) -> None:
        pass


NOOP_REQUEST = _NoopRequest()

_CURRENT: contextvars.ContextVar[RequestContext | None] = contextvars.ContextVar(
    "repro_obs_request", default=None
)

_IDS = itertools.count(1)


def current_request() -> RequestContext | None:
    """The active :class:`RequestContext`, or None outside any scope."""
    return _CURRENT.get()


def new_request_id(kind: str) -> str:
    """Deterministic per-process id: ``<kind>-<sequence>``."""
    return f"{kind}-{next(_IDS):06d}"


@contextmanager
def request(
    kind: str = "request",
    request_id: "str | None" = None,
    trace_id: "str | None" = None,
    parent_span_id: "str | None" = None,
    **tags: object,
) -> Iterator[RequestContext]:
    """Open (or join) a request scope; see the module docstring.

    ``request_id`` / ``trace_id`` / ``parent_span_id`` let a transport
    layer (the HTTP server) bind identity it already negotiated with the
    client; all three default to fresh values. When an enclosing scope
    is joined the explicit identity is ignored — one click, one id.
    """
    if not config._ENABLED:
        yield NOOP_REQUEST  # type: ignore[misc]
        return
    active = _CURRENT.get()
    if active is not None:
        # Join the enclosing request: one click, one id.
        yield active
        return
    ctx = RequestContext(
        request_id=request_id or new_request_id(kind),
        kind=kind,
        tags=dict(tags),
        trace_id=trace_id or new_trace_id(),
        parent_span_id=parent_span_id,
        span_id_hex=new_span_id_hex(),
    )
    token = _CURRENT.set(ctx)
    start = time.perf_counter()
    try:
        yield ctx
    except Exception:
        ctx.outcome = "error"
        raise
    finally:
        duration_s = time.perf_counter() - start
        _CURRENT.reset(token)
        _finish(ctx, duration_s)


def _finish(ctx: RequestContext, duration_s: float) -> None:
    """Record the completed request (outermost scope only)."""
    if not config._ENABLED:  # disabled mid-request: drop silently
        return
    # Imported lazily: the package __init__ builds the singletons this
    # records into, and may still be executing at module import time.
    from . import log, slo
    from .. import obs

    obs.registry.histogram(
        "obs.request_seconds",
        help="wall time of request scopes (obs.request)",
    ).observe(duration_s, kind=ctx.kind)
    obs.registry.counter(
        "obs.requests_total",
        help="completed request scopes by kind and outcome",
    ).inc(kind=ctx.kind, outcome=ctx.outcome)
    slo.tracker.record(duration_s, outcome=ctx.outcome)
    log.event(
        "request",
        request_id=ctx.request_id,
        trace_id=ctx.trace_id,
        request_kind=ctx.kind,
        duration_s=duration_s,
        outcome=ctx.outcome,
        **ctx.tags,
    )
    _flush_to_store(ctx, duration_s)
    if config.flight_enabled():
        from . import flight

        flight.recorder.finish_request(ctx, duration_s)


def _flush_to_store(ctx: RequestContext, duration_s: float) -> None:
    """Persist the request summary into the installed telemetry store.

    Storage is best-effort: a full disk or revoked permissions must
    degrade to a counter bump, never break the request being recorded.
    """
    from . import store as store_mod

    telemetry_store = store_mod.active_store()
    if telemetry_store is None:
        return
    try:
        telemetry_store.record_request(
            request_id=ctx.request_id,
            kind=ctx.kind,
            duration_s=duration_s,
            outcome=ctx.outcome,
            tags=ctx.tags,
        )
    except OSError:
        from .. import obs

        obs.registry.counter(
            "obs.store_append_failures_total",
            help="telemetry store appends dropped on disk errors",
        ).inc()


def record_rejected(
    kind: str,
    outcome: str,
    duration_s: float = 0.0,
    request_id: "str | None" = None,
    trace_id: "str | None" = None,
    **tags: object,
) -> None:
    """Bill a request that was rejected before any work scope opened.

    Early-reject paths (bad tenant id, registry full, admission shed)
    never enter ``obs.request`` — no thunk runs — but they still need to
    show up in ``obs.requests_total`` and the flight recorder so the
    operator sees *every* response the service produced. Deliberately
    skipped: the SLO tracker (sheds must not consume error budget — the
    whole point of shedding is to protect it) and the telemetry store
    (its history tracks completed work, not refusals).
    """
    if not config._ENABLED:
        return
    from . import log
    from .. import obs

    rid = request_id or new_request_id(kind)
    obs.registry.counter(
        "obs.requests_total",
        help="completed request scopes by kind and outcome",
    ).inc(kind=kind, outcome=outcome)
    log.event(
        "request_rejected",
        request_id=rid,
        trace_id=trace_id or "",
        request_kind=kind,
        duration_s=duration_s,
        outcome=outcome,
        **tags,
    )
    if config.flight_enabled():
        from . import flight

        flight.recorder.record_rejected(
            request_id=rid,
            trace_id=trace_id or "",
            kind=kind,
            outcome=outcome,
            duration_s=duration_s,
            tags=dict(tags),
        )


def reset() -> None:
    """Restart id allocation (``obs.reset`` calls this).

    An in-flight request keeps its context object — resetting inside an
    active scope is not supported and simply renumbers future requests.
    """
    global _IDS
    _IDS = itertools.count(1)
