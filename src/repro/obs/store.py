"""Crash-safe historical telemetry store (JSONL segments + rollups).

PR 5's telemetry is in-process only: every snapshot dies with the
process, so there is no way to ask "how was attainment yesterday?" or
to compare latency across runs. :class:`TelemetryStore` is the
longitudinal half (DESIGN.md §10):

* **Append-only JSONL segments.** Each completed ``obs.request`` scope
  flushes one summary record (timestamp, request id, kind, duration,
  outcome, tags) to the active segment. Writes are single lines
  followed by a flush, so a crash can tear at most the final record.
* **Size-based rotation with atomic sealing.** When the active segment
  (``segment-NNNNNN.open.jsonl``) exceeds ``max_segment_bytes`` it is
  sealed by an atomic rename to ``segment-NNNNNN.jsonl``. Sealed
  segments are immutable; only sealed segments are ever compacted. A
  store opened over a crashed process's directory seals the orphaned
  ``.open`` segment first — the reader tolerates its possibly-torn
  tail.
* **Compaction into per-period rollups.** :meth:`TelemetryStore.compact`
  folds sealed segments into per-period JSON rollups (request counts,
  outcome mix, a fixed-bucket latency sketch, SLO-good counts) under
  ``rollups/`` and deletes the folded segments. Rollup writes are
  atomic (tmp file + ``os.replace``) and merging is idempotent per
  segment because a segment is deleted only after its rollups land.
* **Reader API.** :meth:`records` iterates raw records (skipping torn
  or corrupt lines instead of raising), :meth:`history` merges rollups
  with not-yet-compacted segments into one per-period trend — what
  ``devicescope obs --history`` renders.

The store is opt-in: nothing is written unless a store is installed via
:func:`set_store` (or ``devicescope obs --store DIR``). A failing disk
write never breaks the request that triggered it — append errors are
counted (``obs.store_append_failures_total``) and swallowed.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from dataclasses import dataclass

import numpy as np

from .metrics import exponential_buckets
from .slo import GOOD_OUTCOMES

__all__ = [
    "TelemetryStore",
    "LATENCY_EDGES_MS",
    "DEFAULT_STORE_DIR",
    "set_store",
    "active_store",
    "configure",
]

#: Latency sketch bucket edges in milliseconds: 10 µs up to ~22 min.
LATENCY_EDGES_MS = tuple(exponential_buckets(0.01, 2.0, 27))

#: Default on-disk location used by the CLI when ``--store`` is given
#: without a path.
DEFAULT_STORE_DIR = ".devicescope_telemetry"

_SEALED = re.compile(r"^segment-(\d{6})\.jsonl$")
_OPEN = re.compile(r"^segment-(\d{6})\.open\.jsonl$")
_ROLLUP = re.compile(r"^rollup-(\d+)\.json$")


def _bucket_quantile(edges: tuple, counts, q: float) -> float:
    """Upper-edge quantile estimate over a bucket sketch (NaN when
    empty — same contract as :meth:`repro.obs.metrics.Histogram.quantile`)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return float("nan")
    cumulative = np.cumsum(counts)
    bucket = int(np.searchsorted(cumulative, q * total, side="left"))
    return float(edges[min(bucket, len(edges) - 1)])


@dataclass
class _PeriodAccumulator:
    """One period's folded request statistics (mergeable)."""

    period_start: float
    period_s: float
    objective_ms: float
    count: int = 0
    good: int = 0
    latency_sum_ms: float = 0.0
    latency_max_ms: float = 0.0

    def __post_init__(self):
        self.outcomes: dict[str, int] = {}
        self.kinds: dict[str, int] = {}
        self.latency_counts = np.zeros(len(LATENCY_EDGES_MS) + 1, np.int64)

    def add(self, record: dict) -> None:
        duration_ms = float(record.get("duration_ms", 0.0))
        outcome = str(record.get("outcome", "ok"))
        kind = str(record.get("kind", "request"))
        self.count += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.kinds[kind] = self.kinds.get(kind, 0) + 1
        if outcome in GOOD_OUTCOMES and duration_ms <= self.objective_ms:
            self.good += 1
        if math.isfinite(duration_ms):
            idx = int(
                np.searchsorted(LATENCY_EDGES_MS, duration_ms, side="left")
            )
            self.latency_counts[idx] += 1
            self.latency_sum_ms += duration_ms
            self.latency_max_ms = max(self.latency_max_ms, duration_ms)

    def merge_dict(self, rollup: dict) -> None:
        """Fold a previously persisted rollup into this accumulator."""
        self.count += int(rollup.get("count", 0))
        self.good += int(rollup.get("good", 0))
        for key, value in rollup.get("outcomes", {}).items():
            self.outcomes[key] = self.outcomes.get(key, 0) + int(value)
        for key, value in rollup.get("kinds", {}).items():
            self.kinds[key] = self.kinds.get(key, 0) + int(value)
        latency = rollup.get("latency_ms", {})
        counts = latency.get("counts", [])
        if len(counts) == len(self.latency_counts):
            self.latency_counts += np.asarray(counts, dtype=np.int64)
        self.latency_sum_ms += float(latency.get("sum", 0.0))
        self.latency_max_ms = max(
            self.latency_max_ms, float(latency.get("max", 0.0))
        )

    def to_dict(self) -> dict:
        return {
            "period_start": self.period_start,
            "period_s": self.period_s,
            "objective_ms": self.objective_ms,
            "count": self.count,
            "good": self.good,
            "outcomes": dict(self.outcomes),
            "kinds": dict(self.kinds),
            "latency_ms": {
                "edges": list(LATENCY_EDGES_MS),
                "counts": self.latency_counts.tolist(),
                "sum": self.latency_sum_ms,
                "max": self.latency_max_ms,
            },
        }

    def summary(self) -> dict:
        """The derived per-period trend row (what ``history`` returns)."""
        out = self.to_dict()
        out["attainment"] = self.good / self.count if self.count else float("nan")
        for name, q in (("p50_ms", 0.5), ("p95_ms", 0.95), ("p99_ms", 0.99)):
            out[name] = _bucket_quantile(LATENCY_EDGES_MS, self.latency_counts, q)
        return out


class TelemetryStore:
    """Append-only on-disk request telemetry with rollup compaction.

    Parameters
    ----------
    root:
        Directory holding segments and rollups (created if missing).
    max_segment_bytes:
        Rotation threshold — once the active segment reaches this many
        bytes it is sealed and a fresh one started.
    objective_ms:
        Latency objective used to classify requests as SLO-good inside
        rollups (defaults to the global tracker's objective).
    period_s:
        Rollup period in seconds (default one hour).
    clock:
        Injectable ``time.time``-style clock (tests).
    fsync:
        Force ``os.fsync`` after every append. Off by default — the
        flush-per-line default already bounds loss to the final record.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        max_segment_bytes: int = 1_000_000,
        objective_ms: float | None = None,
        period_s: float = 3600.0,
        clock=time.time,
        fsync: bool = False,
    ):
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if objective_ms is None:
            from . import slo

            objective_ms = slo.tracker.objective_ms
        self.root = os.fspath(root)
        self.max_segment_bytes = int(max_segment_bytes)
        self.objective_ms = float(objective_ms)
        self.period_s = float(period_s)
        self.clock = clock
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._handle = None
        self._active_path: str | None = None
        self._active_bytes = 0
        os.makedirs(os.path.join(self.root, "rollups"), exist_ok=True)
        self._recover_orphans()
        self._next_id = self._max_segment_id() + 1

    # -- segment lifecycle -------------------------------------------------

    def _recover_orphans(self) -> None:
        """Seal ``.open`` segments left behind by a crashed process."""
        for name in sorted(os.listdir(self.root)):
            match = _OPEN.match(name)
            if match:
                sealed = f"segment-{match.group(1)}.jsonl"
                os.replace(
                    os.path.join(self.root, name),
                    os.path.join(self.root, sealed),
                )

    def _max_segment_id(self) -> int:
        ids = [0]
        for name in os.listdir(self.root):
            match = _SEALED.match(name) or _OPEN.match(name)
            if match:
                ids.append(int(match.group(1)))
        return max(ids)

    def _ensure_open(self) -> None:
        if self._handle is not None:
            return
        name = f"segment-{self._next_id:06d}.open.jsonl"
        self._next_id += 1
        self._active_path = os.path.join(self.root, name)
        self._handle = open(self._active_path, "a", encoding="utf-8")
        self._active_bytes = self._handle.tell()

    def _seal_locked(self) -> None:
        if self._handle is None:
            return
        self._handle.close()
        assert self._active_path is not None
        sealed = self._active_path.replace(".open.jsonl", ".jsonl")
        os.replace(self._active_path, sealed)
        self._handle = None
        self._active_path = None
        self._active_bytes = 0

    def append(self, record: dict) -> None:
        """Append one JSON record to the active segment (rotating first
        if the segment is full)."""
        line = json.dumps(record, default=str, separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            self._ensure_open()
            if self._active_bytes and (
                self._active_bytes + len(data) > self.max_segment_bytes
            ):
                self._seal_locked()
                self._ensure_open()
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._active_bytes += len(data)

    def record_request(
        self,
        request_id: str,
        kind: str,
        duration_s: float,
        outcome: str,
        tags: dict | None = None,
        ts: float | None = None,
    ) -> None:
        """Append one completed-request summary (the ``obs.request``
        exit hook calls this)."""
        self.append(
            {
                "ts": self.clock() if ts is None else float(ts),
                "request_id": request_id,
                "kind": kind,
                "duration_ms": float(duration_s) * 1e3,
                "outcome": outcome,
                "tags": {str(k): str(v) for k, v in (tags or {}).items()},
            }
        )

    def seal_active(self) -> None:
        """Seal the active segment (if any) without closing the store."""
        with self._lock:
            self._seal_locked()

    def close(self) -> None:
        """Flush and seal; the directory is then safe for another
        process to open."""
        self.seal_active()

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def _segment_paths(self, sealed_only: bool = False) -> list[str]:
        sealed: list[tuple[int, str]] = []
        open_segments: list[tuple[int, str]] = []
        for name in os.listdir(self.root):
            match = _SEALED.match(name)
            if match:
                sealed.append((int(match.group(1)), os.path.join(self.root, name)))
                continue
            match = _OPEN.match(name)
            if match and not sealed_only:
                open_segments.append(
                    (int(match.group(1)), os.path.join(self.root, name))
                )
        return [p for _, p in sorted(sealed + open_segments)]

    @staticmethod
    def read_segment(path: str) -> tuple[list[dict], int]:
        """All intact records of one segment plus the count of torn or
        corrupt lines skipped (a crash mid-append tears at most the
        final line; the reader never raises on it)."""
        records: list[dict] = []
        skipped = 0
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        skipped += 1
                        continue
                    if isinstance(record, dict):
                        records.append(record)
                    else:
                        skipped += 1
        except OSError:
            return [], 0
        return records, skipped

    def records(self) -> list[dict]:
        """Every intact record across sealed + active segments, oldest
        segment first."""
        out: list[dict] = []
        for path in self._segment_paths():
            records, _ = self.read_segment(path)
            out.extend(records)
        return out

    def scan(self) -> dict:
        """Storage inventory: segment/rollup counts and torn records."""
        paths = self._segment_paths()
        torn = 0
        records = 0
        for path in paths:
            recs, skipped = self.read_segment(path)
            torn += skipped
            records += len(recs)
        return {
            "segments": len(paths),
            "sealed_segments": len(self._segment_paths(sealed_only=True)),
            "records": records,
            "torn_records": torn,
            "rollups": len(self._rollup_paths()),
        }

    # -- rollups / compaction ---------------------------------------------

    def _period_start(self, ts: float) -> float:
        return math.floor(float(ts) / self.period_s) * self.period_s

    def _rollup_paths(self) -> list[str]:
        rollup_dir = os.path.join(self.root, "rollups")
        out = []
        for name in os.listdir(rollup_dir):
            if _ROLLUP.match(name):
                out.append(os.path.join(rollup_dir, name))
        return sorted(out)

    def _rollup_path(self, period_start: float) -> str:
        return os.path.join(
            self.root, "rollups", f"rollup-{int(period_start)}.json"
        )

    def _load_rollup(self, period_start: float) -> dict | None:
        try:
            with open(self._rollup_path(period_start), encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def _fold(
        self, records: list[dict], into: dict[float, _PeriodAccumulator]
    ) -> None:
        for record in records:
            ts = record.get("ts")
            if not isinstance(ts, (int, float)) or not math.isfinite(ts):
                continue
            period = self._period_start(ts)
            acc = into.get(period)
            if acc is None:
                acc = _PeriodAccumulator(
                    period, self.period_s, self.objective_ms
                )
                into[period] = acc
            acc.add(record)

    def compact(self) -> dict:
        """Fold every sealed segment into per-period rollups, then
        delete the folded segments.

        Returns ``{"segments_compacted": n, "periods": [...]}``. The
        active segment is untouched — seal it first (or :meth:`close`)
        to make the current run's telemetry compactable. Rollup files
        are written atomically, and segments are deleted only after all
        their periods are persisted, so a crash mid-compaction at worst
        re-folds a segment whose rollups already landed — re-run
        :meth:`compact` after such a crash only if double counting is
        acceptable, or simply keep the segment (the default reader
        handles both layouts).
        """
        paths = self._segment_paths(sealed_only=True)
        accumulators: dict[float, _PeriodAccumulator] = {}
        folded: list[str] = []
        for path in paths:
            records, _ = self.read_segment(path)
            self._fold(records, accumulators)
            folded.append(path)
        if not folded:
            return {"segments_compacted": 0, "periods": []}
        for period, acc in sorted(accumulators.items()):
            existing = self._load_rollup(period)
            if existing:
                acc.merge_dict(existing)
            target = self._rollup_path(period)
            tmp = target + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(acc.to_dict(), fh)
            os.replace(tmp, target)
        for path in folded:
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - already gone
                pass
        return {
            "segments_compacted": len(folded),
            "periods": sorted(accumulators),
        }

    def history(self, limit: int | None = None) -> list[dict]:
        """Per-period trend rows across *all* retained telemetry —
        compacted rollups merged with not-yet-compacted segments —
        oldest first. Each row is a rollup dict plus the derived
        ``attainment`` / ``p50_ms`` / ``p95_ms`` / ``p99_ms``.
        """
        accumulators: dict[float, _PeriodAccumulator] = {}
        for path in self._rollup_paths():
            try:
                with open(path, encoding="utf-8") as fh:
                    rollup = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            period = float(rollup.get("period_start", 0.0))
            acc = accumulators.get(period)
            if acc is None:
                acc = accumulators[period] = _PeriodAccumulator(
                    period, self.period_s, self.objective_ms
                )
            acc.merge_dict(rollup)
        for path in self._segment_paths():
            records, _ = self.read_segment(path)
            self._fold(records, accumulators)
        rows = [acc.summary() for _, acc in sorted(accumulators.items())]
        if limit is not None:
            rows = rows[-limit:]
        return rows


# -- process-wide installation ---------------------------------------------

_ACTIVE: TelemetryStore | None = None
_ACTIVE_LOCK = threading.Lock()


def set_store(store: TelemetryStore | None) -> None:
    """Install (or with ``None`` remove) the process-wide store that
    completed ``obs.request`` scopes flush into."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = store


def active_store() -> TelemetryStore | None:
    """The installed :class:`TelemetryStore`, or None (the default)."""
    return _ACTIVE


def configure(root: str | os.PathLike, **kwargs) -> TelemetryStore:
    """Create a store at ``root`` and install it; returns the store."""
    store = TelemetryStore(root, **kwargs)
    set_store(store)
    return store
