"""Structured event emitter replacing ad-hoc ``print()`` in library code.

Library modules call ``obs.log.event("trainer.epoch", epoch=3, loss=0.1)``
instead of printing. The event is:

* **recorded** in an in-memory ring buffer whenever observability is
  enabled (so reports/tests can inspect training progress), and
* **written** to the configured stream (default ``sys.stderr``) only
  when the global verbose flag is on or the caller forces it (the
  ``Trainer(verbose=True)`` path) — and never when ``quiet`` is set.

Nothing here ever writes to stdout: stdout belongs to the CLI's actual
output (tables, reports), not to progress chatter.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import IO

from . import config, context

__all__ = [
    "event",
    "events",
    "reset",
    "set_stream",
    "set_capacity",
    "capacity",
    "format_record",
]

#: Default event retention — a ring buffer so a long-lived serving
#: process holds bounded telemetry state (see DESIGN.md §9).
DEFAULT_CAPACITY = 10_000

_BUFFER: deque[dict] = deque(maxlen=DEFAULT_CAPACITY)
_STREAM: IO[str] | None = None  # None → sys.stderr at emit time


def set_stream(stream: IO[str] | None) -> None:
    """Redirect emitted lines (None restores the default stderr)."""
    global _STREAM
    _STREAM = stream


def set_capacity(n: int) -> None:
    """Resize the event ring buffer, keeping the newest records."""
    if n < 1:
        raise ValueError("capacity must be >= 1")
    global _BUFFER
    _BUFFER = deque(_BUFFER, maxlen=n)


def capacity() -> int:
    return _BUFFER.maxlen or DEFAULT_CAPACITY


def format_record(record: dict) -> str:
    """``name key=value ...`` with floats shortened for readability."""
    name = record.get("event", "?")
    parts = [name]
    for key, value in record.items():
        if key in ("event", "ts"):
            continue
        if isinstance(value, float):
            text = f"{value:.6g}"
        else:
            text = str(value)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def event(name: str, _force: bool = False, **fields: object) -> dict:
    """Record (and maybe emit) one structured event; returns the record."""
    record = {"event": name, **fields}
    if config._ENABLED:
        record["ts"] = time.time()
        request = context.current_request()
        if request is not None and "request_id" not in record:
            record["request_id"] = request.request_id
        if request is not None and "trace_id" not in record:
            trace_id = getattr(request, "trace_id", "")
            if trace_id:
                record["trace_id"] = trace_id
        _BUFFER.append(record)
    if (_force or config._VERBOSE) and not config._QUIET:
        stream = _STREAM if _STREAM is not None else sys.stderr
        stream.write(format_record(record) + "\n")
    return record


def events(name: str | None = None) -> list[dict]:
    """Recorded events, optionally filtered by event name."""
    if name is None:
        return list(_BUFFER)
    return [record for record in _BUFFER if record.get("event") == name]


def reset() -> None:
    _BUFFER.clear()
