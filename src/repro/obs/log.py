"""Structured event emitter replacing ad-hoc ``print()`` in library code.

Library modules call ``obs.log.event("trainer.epoch", epoch=3, loss=0.1)``
instead of printing. The event is:

* **recorded** in an in-memory ring buffer whenever observability is
  enabled (so reports/tests can inspect training progress), and
* **written** to the configured stream (default ``sys.stderr``) only
  when the global verbose flag is on or the caller forces it (the
  ``Trainer(verbose=True)`` path) — and never when ``quiet`` is set.

Nothing here ever writes to stdout: stdout belongs to the CLI's actual
output (tables, reports), not to progress chatter.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import IO

from . import config

__all__ = ["event", "events", "reset", "set_stream", "format_record"]

_BUFFER: deque[dict] = deque(maxlen=1024)
_STREAM: IO[str] | None = None  # None → sys.stderr at emit time


def set_stream(stream: IO[str] | None) -> None:
    """Redirect emitted lines (None restores the default stderr)."""
    global _STREAM
    _STREAM = stream


def format_record(record: dict) -> str:
    """``name key=value ...`` with floats shortened for readability."""
    name = record.get("event", "?")
    parts = [name]
    for key, value in record.items():
        if key in ("event", "ts"):
            continue
        if isinstance(value, float):
            text = f"{value:.6g}"
        else:
            text = str(value)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def event(name: str, _force: bool = False, **fields: object) -> dict:
    """Record (and maybe emit) one structured event; returns the record."""
    record = {"event": name, **fields}
    if config._ENABLED:
        record["ts"] = time.time()
        _BUFFER.append(record)
    if (_force or config._VERBOSE) and not config._QUIET:
        stream = _STREAM if _STREAM is not None else sys.stderr
        stream.write(format_record(record) + "\n")
    return record


def events(name: str | None = None) -> list[dict]:
    """Recorded events, optionally filtered by event name."""
    if name is None:
        return list(_BUFFER)
    return [record for record in _BUFFER if record.get("event") == name]


def reset() -> None:
    _BUFFER.clear()
