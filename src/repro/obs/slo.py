"""Rolling SLO / health aggregation over request latencies.

:class:`SloTracker` consumes the ``(duration, outcome)`` stream that
``obs.request`` scopes emit and answers the serving questions: what
fraction of recent requests were *good* (finished within the latency
objective with an ``ok`` verdict), where are the latency percentiles,
and how fast is the error budget burning.

Definitions (DESIGN.md §9):

* A request is **good** iff its outcome is in :data:`GOOD_OUTCOMES`
  (``ok``, or ``client_error`` — a well-formed rejection of a bad
  request is the service doing its job, not a service failure) *and*
  its latency is within ``objective_ms``. Degraded and errored
  requests spend budget even when they were fast — a degraded answer
  is not the product.
* **attainment** = good / total over the rolling window (NaN with no
  data — see :meth:`repro.obs.metrics.Histogram.quantile` for the same
  contract).
* **burn_rate** = (1 - attainment) / error_budget: 1.0 means failures
  arrive exactly at the budgeted rate; above 1.0 the budget depletes.

The window is a ring buffer (default 2048 requests) so a long-lived
serving process holds bounded state, mirroring the event/span caps.
"""

from __future__ import annotations

import math
import threading
from collections import deque

import numpy as np

__all__ = ["SloTracker", "tracker", "health_level", "GOOD_OUTCOMES"]

_GOOD_OUTCOME = "ok"

#: Outcomes that spend no error budget. ``client_error`` is a handled
#: 4xx: the caller's fault, answered correctly — without this class,
#: one misbehaving client replaying bad requests would drive the burn
#: rate past the shed threshold and take down service for every tenant.
GOOD_OUTCOMES = frozenset({"ok", "client_error"})


def health_level(snapshot: dict) -> str:
    """Collapse an SLO snapshot to ``ok`` / ``degraded`` / ``critical``.

    No data is not an outage (``ok``); a breached objective is
    ``degraded``; burning the error budget at 2x or faster — the point
    where a fast-burn page would fire — is ``critical``. This is the
    SLO input to :meth:`repro.app.session.DeviceScope.health`'s
    top-level ``status``.
    """
    if not snapshot.get("count", 0):
        return "ok"
    if snapshot.get("healthy", True):
        return "ok"
    burn = snapshot.get("burn_rate", 0.0)
    if isinstance(burn, float) and math.isnan(burn):
        return "ok"
    return "critical" if burn >= 2.0 else "degraded"


class SloTracker:
    """Rolling-window request health aggregation."""

    def __init__(
        self,
        objective_ms: float = 250.0,
        error_budget: float = 0.01,
        window: int = 2048,
    ):
        if objective_ms <= 0:
            raise ValueError("objective_ms must be positive")
        if not 0.0 < error_budget < 1.0:
            raise ValueError("error_budget must be in (0, 1)")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.objective_ms = float(objective_ms)
        self.error_budget = float(error_budget)
        self.window = int(window)
        self._lock = threading.Lock()
        # (duration_ms, outcome) per completed request, newest last.
        self._requests: deque[tuple[float, str]] = deque(maxlen=self.window)

    def record(self, duration_s: float, outcome: str = _GOOD_OUTCOME) -> None:
        """Ingest one completed request."""
        with self._lock:
            self._requests.append((float(duration_s) * 1e3, str(outcome)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._requests)

    def snapshot(self) -> dict:
        """Plain-dict health rollup (JSON-serializable).

        With no recorded requests, ``attainment``/percentiles/
        ``burn_rate`` are NaN and ``healthy`` is True — no data is not
        an outage.
        """
        with self._lock:
            requests = list(self._requests)
        count = len(requests)
        if count == 0:
            nan = float("nan")
            return {
                "count": 0,
                "objective_ms": self.objective_ms,
                "error_budget": self.error_budget,
                "window": self.window,
                "attainment": nan,
                "p50_ms": nan,
                "p95_ms": nan,
                "p99_ms": nan,
                "burn_rate": nan,
                "outcomes": {},
                "healthy": True,
            }
        durations = np.asarray([ms for ms, _ in requests], dtype=np.float64)
        outcomes: dict[str, int] = {}
        good = 0
        for ms, outcome in requests:
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            if outcome in GOOD_OUTCOMES and ms <= self.objective_ms:
                good += 1
        attainment = good / count
        burn_rate = (1.0 - attainment) / self.error_budget
        p50, p95, p99 = np.percentile(durations, [50.0, 95.0, 99.0])
        return {
            "count": count,
            "objective_ms": self.objective_ms,
            "error_budget": self.error_budget,
            "window": self.window,
            "attainment": attainment,
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "p99_ms": float(p99),
            "burn_rate": burn_rate,
            "outcomes": outcomes,
            "healthy": attainment >= 1.0 - self.error_budget,
        }

    def attainment(self) -> float:
        """Shortcut for ``snapshot()["attainment"]``."""
        return self.snapshot()["attainment"]

    def reset(self) -> None:
        with self._lock:
            self._requests.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        snap = self.snapshot()
        att = snap["attainment"]
        shown = "n/a" if isinstance(att, float) and math.isnan(att) else f"{att:.3f}"
        return (
            f"SloTracker(objective_ms={self.objective_ms}, "
            f"count={snap['count']}, attainment={shown})"
        )


#: Process-wide tracker fed by ``obs.request`` scopes.
tracker = SloTracker()
