"""Tail-sampling flight recorder: complete span trees for the traces
that matter.

The :class:`~repro.obs.tracing.Tracer` ring keeps *every* recent root
span, which is the right default for a notebook but the wrong shape for
an incident at serving scale: 10k healthy traces crowd out the three
that explain the outage. The flight recorder inverts the policy —
**tail-based retention** decides *after* a request completes whether its
trace is worth keeping:

* ``error`` / ``degraded`` / ``shed`` outcomes are **always** retained;
* requests at or above the rolling p90 duration (and strictly above the
  fastest recent request — a uniform-latency load must not read as 100%
  slow) are retained as ``slow``, the slowest decile of recent traffic;
* everything else is probabilistically sampled (deterministic seeded
  RNG) so the ring also holds a baseline of healthy traces to diff
  against.

Retention is bounded twice — by entry count and by estimated JSON
bytes — and eviction is tiered: ``sampled`` entries go first, then
``slow``, then oldest-of-anything, so an incident's error traces are the
last thing squeezed out.

Entries whose outcome is in the always-keep class are additionally
dumped to the installed :class:`~repro.obs.store.TelemetryStore` (PR 6)
best-effort, so a crash right after the bad request still leaves the
trace on disk.

Wiring: :meth:`Tracer._close` feeds completed root spans to
:meth:`FlightRecorder.add_root`; :func:`repro.obs.context._finish`
calls :meth:`FlightRecorder.finish_request` when the outermost request
scope exits; early-reject paths go through
:func:`repro.obs.context.record_rejected`. All three are gated on
:func:`repro.obs.config.flight_enabled`.
"""

from __future__ import annotations

import json
import random
import threading
from collections import OrderedDict, deque

__all__ = ["FlightRecorder", "recorder"]

#: Outcomes that are always retained (and dumped to the store).
KEEP_OUTCOMES = frozenset({"error", "degraded", "shed"})


class FlightRecorder:
    """Bounded ring of complete request traces with tail-based retention."""

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int = 8 * 1024 * 1024,
        sample_rate: float = 0.05,
        slow_window: int = 512,
        slow_quantile: float = 0.9,
        seed: int = 0,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.sample_rate = float(sample_rate)
        self.slow_quantile = float(slow_quantile)
        self._seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque()
        self._bytes = 0
        #: Span trees buffered per in-flight request id. Bounded so a
        #: request that never finishes (or spans emitted outside any
        #: serve scope) cannot grow memory without limit.
        self._pending: OrderedDict[str, list[dict]] = OrderedDict()
        self._pending_cap = 1024
        #: Rolling durations of recent *completed* requests — the p90 of
        #: this window is the "slow" retention threshold.
        self._durations: deque[float] = deque(maxlen=slow_window)
        # Counters (exposed via stats(), not the metrics registry, so
        # the recorder stays usable even while metrics are cleared).
        self._seen = 0
        self._kept = 0
        self._evicted = 0
        self._store_failures = 0

    # -- ingest ------------------------------------------------------------

    def add_root(self, span) -> None:
        """Buffer a completed root span tree under its request id."""
        rid = span.request_id
        if rid is None:
            return
        tree = span.to_dict()
        with self._lock:
            bucket = self._pending.get(rid)
            if bucket is None:
                while len(self._pending) >= self._pending_cap:
                    self._pending.popitem(last=False)
                bucket = []
                self._pending[rid] = bucket
            bucket.append(tree)

    def finish_request(self, ctx, duration_s: float) -> None:
        """Apply retention to a completed request's buffered trace."""
        with self._lock:
            spans = self._pending.pop(ctx.request_id, [])
            self._seen += 1
            threshold = self._slow_threshold_locked()
            # "Slow" must also beat the *fastest* recent request: when
            # every request takes the same time the p90 equals that
            # time, and without the floor a uniform-latency load would
            # read as 100% slow and flood the ring.
            floor = min(self._durations) if self._durations else 0.0
            self._durations.append(duration_s)
            outcome = ctx.outcome
            if outcome in KEEP_OUTCOMES:
                reason = outcome
            elif (
                threshold is not None
                and duration_s >= threshold
                and duration_s > floor
            ):
                reason = "slow"
            elif self._rng.random() < self.sample_rate:
                reason = "sampled"
            else:
                return
            entry = {
                "request_id": ctx.request_id,
                "trace_id": ctx.trace_id,
                "kind": ctx.kind,
                "outcome": outcome,
                "duration_s": duration_s,
                "tags": dict(ctx.tags),
                "reason": reason,
                "spans": spans,
            }
            self._retain_locked(entry)
        if outcome in KEEP_OUTCOMES:
            self._dump_to_store(entry)

    def record_rejected(
        self,
        request_id: str,
        trace_id: str,
        kind: str,
        outcome: str,
        duration_s: float,
        tags: dict,
    ) -> None:
        """Record a request refused before any span could be emitted."""
        with self._lock:
            self._seen += 1
            self._durations.append(duration_s)
            if outcome in KEEP_OUTCOMES:
                reason = outcome
            elif self._rng.random() < self.sample_rate:
                reason = "sampled"
            else:
                return
            entry = {
                "request_id": request_id,
                "trace_id": trace_id,
                "kind": kind,
                "outcome": outcome,
                "duration_s": duration_s,
                "tags": dict(tags),
                "reason": reason,
                "spans": [],
            }
            self._retain_locked(entry)
        if outcome in KEEP_OUTCOMES:
            self._dump_to_store(entry)

    # -- retention mechanics ----------------------------------------------

    def _slow_threshold_locked(self) -> "float | None":
        """Rolling p90 duration, or None until enough history exists."""
        n = len(self._durations)
        if n < 20:
            return None
        ordered = sorted(self._durations)
        idx = min(n - 1, int(self.slow_quantile * n))
        return ordered[idx]

    def _retain_locked(self, entry: dict) -> None:
        entry["bytes"] = len(json.dumps(entry, default=str))
        self._entries.append(entry)
        self._bytes += entry["bytes"]
        self._kept += 1
        self._evict_locked()

    def _evict_locked(self) -> None:
        """Tiered eviction: sampled first, then slow, then oldest."""
        count = len(self._entries)

        def over() -> bool:
            return count > self.max_entries or self._bytes > self.max_bytes

        for tier in ("sampled", "slow"):
            if not over():
                return
            survivors: deque[dict] = deque()
            # Walk oldest-first, dropping this tier until under bounds.
            for item in self._entries:
                if over() and item["reason"] == tier:
                    self._bytes -= item["bytes"]
                    self._evicted += 1
                    count -= 1
                    continue
                survivors.append(item)
            self._entries = survivors
        while over() and self._entries:
            dropped = self._entries.popleft()
            self._bytes -= dropped["bytes"]
            self._evicted += 1
            count -= 1

    def _dump_to_store(self, entry: dict) -> None:
        """Best-effort persistence of an always-keep trace (PR 6 store)."""
        from . import store as store_mod

        telemetry_store = store_mod.active_store()
        if telemetry_store is None:
            return
        try:
            telemetry_store.append({"type": "flight", **entry})
        except OSError:
            with self._lock:
                self._store_failures += 1

    # -- retrieval / export -----------------------------------------------

    def entries(self) -> list[dict]:
        """Retained traces, oldest first (copies of the ring entries)."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def stats(self) -> dict:
        with self._lock:
            by_reason: dict[str, int] = {}
            for entry in self._entries:
                by_reason[entry["reason"]] = by_reason.get(entry["reason"], 0) + 1
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "seen": self._seen,
                "kept": self._kept,
                "evicted": self._evicted,
                "pending": len(self._pending),
                "store_failures": self._store_failures,
                "by_reason": by_reason,
                "slow_threshold_s": self._slow_threshold_locked(),
            }

    def to_chrome_trace(self) -> dict:
        """Chrome-trace document over every retained trace's spans."""
        from . import export

        spans: list[dict] = []
        for entry in self.entries():
            spans.extend(entry["spans"])
        return export.to_chrome_trace(spans)

    def configure(
        self,
        max_entries: "int | None" = None,
        max_bytes: "int | None" = None,
        sample_rate: "float | None" = None,
    ) -> None:
        """Adjust bounds in place (existing entries re-evicted)."""
        with self._lock:
            if max_entries is not None:
                if max_entries < 1:
                    raise ValueError("max_entries must be >= 1")
                self.max_entries = max_entries
            if max_bytes is not None:
                if max_bytes < 1:
                    raise ValueError("max_bytes must be >= 1")
                self.max_bytes = max_bytes
            if sample_rate is not None:
                self.sample_rate = float(sample_rate)
            self._evict_locked()

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pending.clear()
            self._durations.clear()
            self._bytes = 0
            self._seen = 0
            self._kept = 0
            self._evicted = 0
            self._store_failures = 0
            self._rng = random.Random(self._seed)


#: Process-wide recorder (``obs.flight_recorder``); ``obs.reset`` resets it.
recorder = FlightRecorder()
