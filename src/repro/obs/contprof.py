"""Continuous wall-clock profiling via ``sys._current_frames()``.

A single daemon thread wakes ~33 times per second (configurable),
snapshots every live thread's Python stack, and accumulates counts per
collapsed stack — the classic folded/flamegraph text format::

    serve-handler;_handle (http.py:210);execute (service.py:118);... 42

One line per distinct (thread label, stack) pair, count = number of
samples in which that stack was on-CPU-or-blocked. Wall-clock sampling
(as opposed to CPU-time) is deliberate: for a serving process, time
spent *waiting* — on the sweep lock, on a batch window, on disk — is
exactly what the operator needs to see.

Per-thread labels come from two sources:

* the thread *name* (the serve layer names its handler threads
  ``serve-handler``, the ensemble pool uses ``ensemble-member``), and
* an explicit role override via :func:`thread_role` — the MicroBatcher
  wraps its stacked sweep in ``thread_role("batch-leader")`` so leader
  work is distinguishable even though it runs on a handler thread.

``start``/``stop`` are idempotent (re-entrant calls no-op), the sampler
is a daemon thread (cannot block interpreter exit), and every started
profiler registers in a module WeakSet so :func:`stop_all` (called from
``obs.reset``) can guarantee no sampler outlives a test.

Overhead: one ``sys._current_frames()`` call plus a few dict updates
per tick — but the dominant cost is not the sample, it is the *wakeup*
(an extra runnable thread contending for the GIL perturbs the compute
threads' scheduling). Measured on the CI workload the cost scales with
wakeup frequency: ~10% at 67 Hz, ~2.5% at 33 Hz. The default interval
is therefore 30 ms (~33 Hz), which keeps the always-on configuration
inside the repo's ≤5% telemetry-overhead budget —
``benchmarks/obs_overhead.py`` gates it in CI.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import weakref

__all__ = [
    "ContinuousProfiler",
    "thread_role",
    "current_role",
    "stop_all",
]

#: Explicit role per thread ident (set via :func:`thread_role`). Plain
#: dict mutated under the GIL — entries are removed on scope exit.
_ROLES: dict[int, str] = {}

#: Every profiler that has ever been started (weakly held) so
#: ``obs.reset`` can stop stragglers without owning their lifecycle.
_ACTIVE: "weakref.WeakSet[ContinuousProfiler]" = weakref.WeakSet()


class thread_role:
    """Context manager tagging the current thread with a role label.

    While active, the profiler labels this thread's samples with
    ``role`` instead of the thread name. Roles nest (inner wins) and
    always restore on exit.
    """

    __slots__ = ("role", "_prev", "_ident")

    def __init__(self, role: str):
        self.role = role
        self._prev: "str | None" = None
        self._ident = 0

    def __enter__(self) -> "thread_role":
        self._ident = threading.get_ident()
        self._prev = _ROLES.get(self._ident)
        _ROLES[self._ident] = self.role
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if self._prev is None:
            _ROLES.pop(self._ident, None)
        else:
            _ROLES[self._ident] = self._prev
        return False


def current_role(ident: int) -> "str | None":
    """The explicit role for a thread ident, if one is set."""
    return _ROLES.get(ident)


#: Memoized frame labels keyed by (code object, line). Samples hit the
#: same few hundred frames thousands of times; formatting each once
#: keeps the sampler's GIL hold per tick small. Strongly referencing
#: code objects is fine — they belong to loaded modules — and the cache
#: is cleared wholesale if it ever grows past the cap.
_LABELS: dict = {}
_LABELS_CAP = 8192


def _frame_label(frame) -> str:
    code = frame.f_code
    key = (code, frame.f_lineno)
    label = _LABELS.get(key)
    if label is None:
        if len(_LABELS) >= _LABELS_CAP:
            _LABELS.clear()
        label = (
            f"{code.co_name} "
            f"({os.path.basename(code.co_filename)}:{frame.f_lineno})"
        )
        _LABELS[key] = label
    return label


class ContinuousProfiler:
    """Sampling wall-clock profiler over all interpreter threads."""

    def __init__(self, interval_s: float = 0.03, max_stacks: int = 10_000):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if max_stacks < 1:
            raise ValueError("max_stacks must be >= 1")
        self.interval_s = float(interval_s)
        self.max_stacks = max_stacks
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._truncated = 0
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start sampling; a second start while running is a no-op."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="obs-contprof", daemon=True
            )
            self._thread.start()
        _ACTIVE.add(self)

    def stop(self) -> None:
        """Stop sampling and join the sampler; idempotent."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- sampling ----------------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own)

    def _sample(self, skip_ident: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        updates: list[str] = []
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            label = _ROLES.get(ident) or names.get(ident, f"thread-{ident}")
            parts = [label]
            depth = 0
            while frame is not None and depth < 64:
                parts.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            # Folded format is root-first: reverse the frames (leaf was
            # appended first), keeping the thread label at the front.
            updates.append(";".join([parts[0]] + parts[:0:-1]))
        with self._lock:
            self._samples += 1
            for key in updates:
                if key in self._counts:
                    self._counts[key] += 1
                elif len(self._counts) < self.max_stacks:
                    self._counts[key] = 1
                else:
                    self._truncated += 1

    # -- retrieval ---------------------------------------------------------

    def collapsed(self) -> str:
        """Folded-stack text (``stack count`` lines, hottest first)."""
        with self._lock:
            items = sorted(
                self._counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def stats(self) -> dict:
        with self._lock:
            return {
                "running": self.running,
                "interval_s": self.interval_s,
                "samples": self._samples,
                "stacks": len(self._counts),
                "truncated": self._truncated,
            }

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0
            self._truncated = 0


def stop_all() -> None:
    """Stop every profiler ever started (``obs.reset`` teardown hook)."""
    for profiler in list(_ACTIVE):
        profiler.stop()
    _ROLES.clear()
