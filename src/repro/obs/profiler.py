"""Per-layer forward/backward timing for :class:`repro.nn.Module` trees.

The nn framework dispatches ``forward``/``backward`` through instance
attribute lookup (``self.forward(x)`` inside ``Module.__call__``;
composite models call ``child.backward(...)`` directly), so a profiler
can shadow the class methods with timing wrappers on each *instance* —
no layer code changes, fully reversible, opt-in::

    with model.profile() as prof:
        out = model(x)
        model.backward(grad)
    print(prof.table(top=10))

Timings land in histograms keyed by layer class and dotted module name
(``nn.forward_seconds{layer="Conv1d", name="block1.conv"}``), in a
dedicated :class:`~repro.obs.metrics.MetricsRegistry` by default.
Parent-module times include their children (a call tree, not self-time);
the table marks leaf layers, where the budget actually goes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from .metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..nn.module import Module

__all__ = ["ModuleProfiler"]

FORWARD_METRIC = "nn.forward_seconds"
BACKWARD_METRIC = "nn.backward_seconds"


class ModuleProfiler:
    """Context manager that instruments every submodule of a tree."""

    def __init__(
        self,
        module: "Module",
        registry: MetricsRegistry | None = None,
    ):
        self.module = module
        self.registry = registry or MetricsRegistry()
        self._forward = self.registry.histogram(
            FORWARD_METRIC,
            help="per-layer forward wall time",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        self._backward = self.registry.histogram(
            BACKWARD_METRIC,
            help="per-layer backward wall time",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        # (module, attr, previous instance attr or None)
        self._wrapped: list[tuple[object, str, object | None]] = []

    # -- attach / detach ---------------------------------------------------

    def attach(self) -> "ModuleProfiler":
        if self._wrapped:
            raise RuntimeError("profiler already attached")
        seen: set[int] = set()
        for name, module in self.module.named_modules():
            if id(module) in seen:
                continue  # shared submodule: time it once
            seen.add(id(module))
            label = name or "<root>"
            layer = type(module).__name__
            self._wrap(module, "forward", self._forward, layer, label)
            self._wrap(module, "backward", self._backward, layer, label)
        return self

    def _wrap(self, module, attr: str, histogram, layer: str, label: str):
        previous = module.__dict__.get(attr)
        original = getattr(module, attr)

        def timed(*args, **kwargs):
            t0 = time.perf_counter()
            out = original(*args, **kwargs)
            histogram.observe(
                time.perf_counter() - t0, layer=layer, name=label
            )
            return out

        object.__setattr__(module, attr, timed)
        self._wrapped.append((module, attr, previous))

    def detach(self) -> None:
        for module, attr, previous in reversed(self._wrapped):
            if previous is None:
                object.__delattr__(module, attr)
            else:  # restore whatever instance attr we shadowed
                object.__setattr__(module, attr, previous)
        self._wrapped.clear()

    def __enter__(self) -> "ModuleProfiler":
        return self.attach()

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # -- reporting ---------------------------------------------------------

    def stats(self) -> list[dict]:
        """Per-layer rows sorted by total (forward + backward) time."""
        per_layer: dict[tuple[str, str], dict] = {}
        leaf_names = {
            (name or "<root>")
            for name, module in self.module.named_modules()
            if not module._modules
        }
        for metric, key in ((self._forward, "forward"), (self._backward, "backward")):
            for entry in metric.snapshot()["series"]:
                labels = entry["labels"]
                row_key = (labels.get("layer", "?"), labels.get("name", "?"))
                row = per_layer.setdefault(
                    row_key,
                    {
                        "layer": row_key[0],
                        "name": row_key[1],
                        "leaf": row_key[1] in leaf_names,
                        "calls": 0,
                        "forward_s": 0.0,
                        "backward_s": 0.0,
                    },
                )
                row[f"{key}_s"] += entry["sum"]
                if key == "forward":
                    row["calls"] = entry["count"]
        rows = list(per_layer.values())
        for row in rows:
            row["total_s"] = row["forward_s"] + row["backward_s"]
            row["mean_forward_s"] = (
                row["forward_s"] / row["calls"] if row["calls"] else 0.0
            )
        rows.sort(key=lambda r: r["total_s"], reverse=True)
        return rows

    def top(self, k: int = 10, leaves_only: bool = True) -> list[dict]:
        """The ``k`` slowest layers (leaf layers by default)."""
        rows = self.stats()
        if leaves_only:
            rows = [row for row in rows if row["leaf"]]
        return rows[: max(k, 0)]

    def table(self, top: int = 10, leaves_only: bool = True) -> str:
        """ASCII per-layer timing table."""
        from .report import format_layer_table

        return format_layer_table(self.top(top, leaves_only=leaves_only))

    def to_dict(self) -> dict:
        return {"layers": self.stats(), "metrics": self.registry.snapshot()}
