"""``repro.obs`` — tracing, metrics, logging, profiling, and export.

The observability layer behind every hot path in the repo (DESIGN.md
§3, §9): CamAL's six inference stages, the trainer's epoch loop, the
sliding-window pipeline, and the benchmark harnesses all emit spans,
metrics, and events through the module-level singletons here.

Quick start::

    from repro import obs

    obs.enable()                       # collection is off by default
    with obs.request(kind="view"):     # request-scoped attribution
        model.localize(x)              # hot paths now record spans/metrics
    print(obs.tracer.find("camal.localize"))
    print(obs.to_openmetrics(obs.registry.snapshot()))
    obs.disable()

Design rules:

* **Zero cost when disabled** (the default): ``obs.span()`` returns a
  shared no-op context manager, ``obs.request()`` yields a shared no-op
  request, metric call sites guard on ``obs.enabled()``, and
  ``obs.log.event`` records nothing.
* **Bounded state**: the event buffer, the tracer's root store, and the
  SLO window are ring buffers (defaults ~10k entries) so a long-lived
  serving process cannot OOM from telemetry.
* **No stdout from library code**: events go to an in-memory buffer and
  (when verbose) stderr; stdout belongs to the CLI.
* **Plain-dict exports everywhere** (``registry.snapshot()``,
  ``tracer.to_dicts()``) so ``devicescope profile --json`` round-trips
  through ``json.loads``; :mod:`repro.obs.export` renders the same
  dicts as OpenMetrics text, Chrome trace-event JSON, and JSONL.
"""

from __future__ import annotations

from . import contprof, log, report
from .config import (
    disable,
    enable,
    enabled,
    enabled_scope,
    flight_enabled,
    is_quiet,
    is_verbose,
    set_enabled,
    set_flight,
    set_quiet,
    set_verbose,
)
from .context import (
    NOOP_REQUEST,
    RequestContext,
    current_request,
    format_traceparent,
    new_span_id_hex,
    new_trace_id,
    parse_traceparent,
    parse_tracestate,
    record_rejected,
    request,
)
from .contprof import ContinuousProfiler, thread_role
from .flight import FlightRecorder
from .flight import recorder as flight_recorder
from .export import to_chrome_trace, to_jsonl, to_openmetrics
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    PROBABILITY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)
from .profiler import ModuleProfiler
from .slo import GOOD_OUTCOMES, SloTracker, health_level
from .slo import tracker as slo_tracker
from .store import TelemetryStore, active_store, set_store
from .store import configure as configure_store
from .tracing import NOOP_SPAN, Span, Tracer
from . import context as _context

__all__ = [
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "enabled_scope",
    "is_verbose",
    "set_verbose",
    "is_quiet",
    "set_quiet",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "linear_buckets",
    "DEFAULT_TIME_BUCKETS",
    "PROBABILITY_BUCKETS",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "ModuleProfiler",
    "RequestContext",
    "NOOP_REQUEST",
    "request",
    "current_request",
    "record_rejected",
    "new_trace_id",
    "new_span_id_hex",
    "parse_traceparent",
    "parse_tracestate",
    "format_traceparent",
    "flight_enabled",
    "set_flight",
    "FlightRecorder",
    "flight_recorder",
    "ContinuousProfiler",
    "contprof",
    "thread_role",
    "SloTracker",
    "slo_tracker",
    "GOOD_OUTCOMES",
    "health_level",
    "TelemetryStore",
    "set_store",
    "active_store",
    "configure_store",
    "to_openmetrics",
    "to_chrome_trace",
    "to_jsonl",
    "registry",
    "tracer",
    "span",
    "log",
    "report",
    "reset",
    "warning",
]

#: Process-wide metrics registry used by the built-in instrumentation.
registry = MetricsRegistry()

#: Process-wide tracer used by the built-in instrumentation.
tracer = Tracer()

#: ``obs.span("name", **attrs)`` — open a span on the global tracer.
span = tracer.span


def reset() -> None:
    """Clear all recorded data (metrics, spans, events, request ids,
    SLO window, flight ring) and stop any running stack samplers;
    flags and ring-buffer capacities unchanged."""
    registry.reset()
    tracer.reset()
    log.reset()
    _context.reset()
    slo_tracker.reset()
    flight_recorder.reset()
    contprof.stop_all()


def warning(name: str, help: str = "", **labels: object) -> None:
    """Bump a warning counter and record a matching log event.

    The library's replacement for ``warnings.warn`` on data-quality
    issues (duplicate timestamps, dropped readings, degraded windows):
    countable, labelled, and silent unless observability is enabled —
    so ``pytest -W error`` never trips on expected dirty-data paths.

    Inside an ``obs.request(...)`` scope, repeated emissions with the
    same (name, labels) are **deduplicated in the event buffer**: the
    first occurrence records an event and later ones bump that record's
    ``count`` field (the counter metric still counts every call). PR 4's
    per-row repair loop can fire hundreds of identical warnings on one
    degraded window; one summarizing event per request is the useful
    signal.
    """
    if not enabled():
        return
    registry.counter(name, help=help).inc(**labels)
    ctx = current_request()
    if ctx is not None:
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        record = ctx.warning_records.get(key)
        if record is not None:
            record["count"] = record.get("count", 1) + 1
            return
        ctx.warning_records[key] = log.event(name, **labels)
        return
    log.event(name, **labels)
