"""``repro.obs`` — tracing, metrics, structured logging, and profiling.

The observability layer behind every hot path in the repo (DESIGN.md
§3): CamAL's six inference stages, the trainer's epoch loop, the
sliding-window pipeline, and the benchmark harnesses all emit spans,
metrics, and events through the module-level singletons here.

Quick start::

    from repro import obs

    obs.enable()                       # collection is off by default
    model.localize(x)                  # hot paths now record spans/metrics
    print(obs.tracer.find("camal.localize"))
    print(obs.report.format_metrics(obs.registry.snapshot()))
    obs.disable()

Design rules:

* **Zero cost when disabled** (the default): ``obs.span()`` returns a
  shared no-op context manager, metric call sites guard on
  ``obs.enabled()``, and ``obs.log.event`` records nothing.
* **No stdout from library code**: events go to an in-memory buffer and
  (when verbose) stderr; stdout belongs to the CLI.
* **Plain-dict exports everywhere** (``registry.snapshot()``,
  ``tracer.to_dicts()``) so ``devicescope profile --json`` round-trips
  through ``json.loads``.
"""

from __future__ import annotations

from . import log, report
from .config import (
    disable,
    enable,
    enabled,
    enabled_scope,
    is_quiet,
    is_verbose,
    set_enabled,
    set_quiet,
    set_verbose,
)
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    PROBABILITY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)
from .profiler import ModuleProfiler
from .tracing import NOOP_SPAN, Span, Tracer

__all__ = [
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "enabled_scope",
    "is_verbose",
    "set_verbose",
    "is_quiet",
    "set_quiet",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "linear_buckets",
    "DEFAULT_TIME_BUCKETS",
    "PROBABILITY_BUCKETS",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "ModuleProfiler",
    "registry",
    "tracer",
    "span",
    "log",
    "report",
    "reset",
    "warning",
]

#: Process-wide metrics registry used by the built-in instrumentation.
registry = MetricsRegistry()

#: Process-wide tracer used by the built-in instrumentation.
tracer = Tracer()

#: ``obs.span("name", **attrs)`` — open a span on the global tracer.
span = tracer.span


def reset() -> None:
    """Clear all recorded data (metrics, spans, events); flags unchanged."""
    registry.reset()
    tracer.reset()
    log.reset()


def warning(name: str, help: str = "", **labels: object) -> None:
    """Bump a warning counter and record a matching log event.

    The library's replacement for ``warnings.warn`` on data-quality
    issues (duplicate timestamps, dropped readings, degraded windows):
    countable, labelled, and silent unless observability is enabled —
    so ``pytest -W error`` never trips on expected dirty-data paths.
    """
    if not enabled():
        return
    registry.counter(name, help=help).inc(**labels)
    log.event(name, **labels)
