"""Standard-format telemetry exporters (pure functions, no collection).

Three interchange formats over the existing snapshot structures:

* :func:`to_openmetrics` — Prometheus/OpenMetrics text exposition of a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`: ``# HELP`` /
  ``# TYPE`` headers, label escaping per spec, histogram
  ``_bucket``/``_sum``/``_count`` series with cumulative counts and a
  ``+Inf`` bucket, terminated by ``# EOF``.
* :func:`to_chrome_trace` — Chrome trace-event JSON (``ph: "X"``
  complete events with ``pid``/``tid``/``ts``/``dur``/``args``) from a
  :class:`~repro.obs.tracing.Tracer` or its ``to_dicts()`` export; one
  track per emitting thread, request ids in ``args``. Opens directly in
  Perfetto / ``about://tracing``.
* :func:`to_jsonl` — structured log events as JSON Lines for shipping.

All three are pure functions over already-collected state: exporting
costs nothing on the hot path, and exporting empty state yields valid
empty documents.
"""

from __future__ import annotations

import json
import math
import re

from .tracing import Span, Tracer

__all__ = ["to_openmetrics", "to_chrome_trace", "to_jsonl"]


# -- OpenMetrics -----------------------------------------------------------

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_CLEAN = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_CLEAN = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    """Sanitize a dotted repo metric name into a legal exposition name
    (``camal.cam_mean`` → ``camal_cam_mean``)."""
    cleaned = _NAME_CLEAN.sub("_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _label_name(name: str) -> str:
    cleaned = _LABEL_CLEAN.sub("_", name)
    if cleaned[:1].isdigit() or not cleaned:
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    merged = {str(k): str(v) for k, v in labels.items()}
    if extra:
        merged.update({str(k): str(v) for k, v in extra.items()})
    if not merged:
        return ""
    inner = ",".join(
        f'{_label_name(k)}="{_escape_label_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


#: The ``devicescope_slo_*`` gauge series derived from one
#: :meth:`~repro.obs.slo.SloTracker.snapshot` — (suffix, key, help).
_SLO_GAUGES = (
    ("requests", "count", "requests in the rolling SLO window"),
    ("attainment", "attainment", "fraction of recent requests that were good"),
    ("burn_rate", "burn_rate", "error-budget burn rate (1.0 = at budget)"),
    ("objective_ms", "objective_ms", "latency objective in milliseconds"),
)


def _slo_lines(slo: dict) -> list[str]:
    """``devicescope_slo_*`` exposition lines for one SLO snapshot.

    With no recorded requests only ``requests``/``objective_ms`` are
    emitted — attainment/burn/percentiles are NaN then, and publishing
    NaN gauges would trip strict scrapers for no signal.
    """
    lines: list[str] = []
    has_data = bool(slo.get("count", 0))
    for suffix, key, help_text in _SLO_GAUGES:
        if not has_data and suffix not in ("requests", "objective_ms"):
            continue
        name = f"devicescope_slo_{suffix}"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(slo.get(key, 0.0))}")
    if has_data:
        name = "devicescope_slo_latency_ms"
        lines.append(
            f"# HELP {name} rolling-window request latency percentiles"
        )
        lines.append(f"# TYPE {name} gauge")
        for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"),
                              ("0.99", "p99_ms")):
            lines.append(
                f"{name}{_format_labels({'quantile': quantile})} "
                f"{_format_value(slo.get(key, 0.0))}"
            )
    return lines


def to_openmetrics(snapshot: dict, slo: dict | None = None) -> str:
    """Render a registry snapshot as OpenMetrics text exposition.

    An empty snapshot (or one whose metrics hold no series) renders a
    valid empty document — just the ``# EOF`` terminator. Passing an
    :meth:`~repro.obs.slo.SloTracker.snapshot` as ``slo`` appends the
    ``devicescope_slo_*`` gauge series (attainment, burn rate, latency
    percentiles) so ``/metrics`` consumers see SLO health, not just raw
    counters.
    """
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        metric = snapshot[raw_name]
        kind = metric.get("type", "gauge")
        series = metric.get("series", [])
        if not series:
            continue
        name = _metric_name(raw_name)
        help_text = metric.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            edges = [float(e) for e in metric.get("edges", [])]
            for entry in series:
                labels = entry.get("labels", {})
                buckets = entry.get("buckets", [])
                cumulative = 0
                for edge, count in zip(edges, buckets):
                    cumulative += int(count)
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(labels, {'le': _format_value(edge)})}"
                        f" {cumulative}"
                    )
                total = int(entry.get("count", 0))
                lines.append(
                    f"{name}_bucket{_format_labels(labels, {'le': '+Inf'})}"
                    f" {total}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)}"
                    f" {_format_value(entry.get('sum', 0.0))}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {total}")
        else:
            for entry in series:
                lines.append(
                    f"{name}{_format_labels(entry.get('labels', {}))}"
                    f" {_format_value(entry.get('value', 0.0))}"
                )
    if slo is not None:
        lines.extend(_slo_lines(slo))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- Chrome trace events ---------------------------------------------------


def _span_dicts(source: "Tracer | list[dict] | list[Span]") -> list[dict]:
    if isinstance(source, Tracer):
        return source.to_dicts()
    return [
        node.to_dict() if isinstance(node, Span) else node for node in source
    ]


def to_chrome_trace(source: "Tracer | list[dict]") -> dict:
    """Convert retained span trees into Chrome trace-event JSON.

    Accepts a :class:`Tracer` or its ``to_dicts()`` output. Returns the
    ``{"traceEvents": [...]}`` object form — ``json.dump`` it to a file
    and open in Perfetto or ``about://tracing``. Spans become ``ph: "X"``
    complete events with microsecond ``ts``/``dur`` (normalized so the
    earliest span starts at 0), one ``tid`` track per emitting thread,
    and ``request_id``/``span_id``/``parent_id`` in ``args``. An empty
    tracer yields a valid empty document.
    """
    roots = _span_dicts(source)
    flat: list[dict] = []

    def walk(node: dict) -> None:
        flat.append(node)
        for child in node.get("children", []):
            walk(child)

    for root in roots:
        walk(root)
    if not flat:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    # Assign tracks in span *start* order, not retention order: root
    # spans are retained in completion order, so a short worker span
    # can precede the long dispatching root that spawned it — track 0
    # ("main") must go to the earliest-starting thread regardless.
    flat.sort(key=lambda node: node.get("start_s", 0.0))
    t0 = flat[0].get("start_s", 0.0)
    tid_tracks: dict[int, int] = {}
    events: list[dict] = []
    for node in flat:
        raw_tid = int(node.get("tid", 0))
        if raw_tid not in tid_tracks:
            tid_tracks[raw_tid] = len(tid_tracks)
        args = dict(node.get("attrs", {}))
        for key in ("span_id", "parent_id", "request_id", "trace_id", "error"):
            if node.get(key) is not None:
                args[key] = node[key]
        events.append(
            {
                "name": node.get("name", "?"),
                "cat": "obs",
                "ph": "X",
                "pid": 1,
                "tid": tid_tracks[raw_tid],
                "ts": (node.get("start_s", t0) - t0) * 1e6,
                "dur": max(node.get("duration_s", 0.0), 0.0) * 1e6,
                "args": args,
            }
        )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": track,
            "args": {"name": "main" if track == 0 else f"worker-{track}"},
        }
        for track in sorted(tid_tracks.values())
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


# -- JSON Lines ------------------------------------------------------------


def to_jsonl(events: list[dict]) -> str:
    """Structured log records as JSON Lines (one object per line).

    Non-JSON-native values are stringified. An empty event list yields
    an empty string (a valid empty JSONL document).
    """
    if not events:
        return ""
    return (
        "\n".join(json.dumps(record, default=str) for record in events) + "\n"
    )
