"""ASCII rendering of traces, layer timings, and metric summaries.

These formatters feed the ``devicescope profile`` subcommand and the
HTML observability panel in :mod:`repro.app.render`. They accept the
plain-dict exports (``Span.to_dict()``, ``ModuleProfiler.stats()``,
``MetricsRegistry.snapshot()``) so a ``--json`` dump renders the same
way after a round trip.
"""

from __future__ import annotations

from .tracing import Span

__all__ = [
    "format_span_tree",
    "format_layer_table",
    "metric_rows",
    "format_metrics",
    "format_slo",
    "format_history",
    "format_batching",
    "format_top_tenants",
    "format_flight",
    "format_dashboard",
    "ascii_report",
]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}µs"


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def format_span_tree(span: Span | dict, total_s: float | None = None) -> str:
    """One span tree as an indented ASCII outline with durations and
    percent-of-root."""
    if isinstance(span, Span):
        span = span.to_dict()
    lines: list[str] = []
    root_total = total_s if total_s is not None else max(span.get("duration_s", 0.0), 1e-12)

    def walk(node: dict, prefix: str, is_last: bool, is_root: bool) -> None:
        duration = node.get("duration_s", 0.0)
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        pct = 100.0 * duration / root_total
        line = (
            f"{_fmt_seconds(duration)} {pct:5.1f}%  "
            f"{prefix}{connector}{node['name']}"
        )
        attrs = node.get("attrs") or {}
        if attrs:
            inline = ", ".join(f"{k}={v}" for k, v in attrs.items())
            line += f"  [{inline}]"
        if node.get("alloc_bytes") is not None:
            line += f"  (+{_fmt_bytes(node['alloc_bytes'])})"
        if node.get("error"):
            line += f"  !! {node['error']}"
        lines.append(line)
        children = node.get("children") or []
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1, False)

    walk(span, "", True, True)
    return "\n".join(lines)


def format_layer_table(rows: list[dict]) -> str:
    """``ModuleProfiler.stats()`` rows as a fixed-width table."""
    if not rows:
        return "(no layer timings recorded)"
    header = (
        f"{'layer':<22} {'name':<28} {'calls':>6} "
        f"{'forward':>10} {'backward':>10} {'total':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['layer']:<22} {row['name']:<28} {row['calls']:>6d} "
            f"{_fmt_seconds(row['forward_s']):>10} "
            f"{_fmt_seconds(row['backward_s']):>10} "
            f"{_fmt_seconds(row['total_s']):>10}"
        )
    return "\n".join(lines)


def metric_rows(snapshot: dict) -> list[dict]:
    """Flatten a registry snapshot into one row per labelled series."""
    rows: list[dict] = []
    for name, metric in snapshot.items():
        for series in metric.get("series", []):
            labels = series.get("labels", {})
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            row = {"metric": name, "type": metric["type"], "labels": label_text}
            if metric["type"] == "histogram":
                row.update(
                    count=series["count"],
                    mean=series["mean"],
                    min=series["min"],
                    max=series["max"],
                    sum=series["sum"],
                )
            else:
                row["value"] = series["value"]
            rows.append(row)
    return rows


def format_metrics(snapshot: dict) -> str:
    """Registry snapshot as an ASCII summary table."""
    rows = metric_rows(snapshot)
    if not rows:
        return "(no metrics recorded)"
    header = (
        f"{'metric':<34} {'type':<10} {'labels':<28} "
        f"{'count':>7} {'mean':>12} {'max':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        if row["type"] == "histogram":
            count = f"{row['count']:d}"
            mean = f"{row['mean']:.6g}"
            peak = f"{row['max']:.6g}"
        else:
            count, mean, peak = "-", f"{row['value']:.6g}", "-"
        lines.append(
            f"{row['metric']:<34} {row['type']:<10} {row['labels']:<28} "
            f"{count:>7} {mean:>12} {peak:>12}"
        )
    return "\n".join(lines)


def format_slo(snapshot: dict) -> str:
    """One-glance health line + percentile row from
    :meth:`repro.obs.slo.SloTracker.snapshot`."""
    count = snapshot.get("count", 0)
    if not count:
        return "slo: no requests recorded"
    attainment = snapshot["attainment"]
    status = "HEALTHY" if snapshot.get("healthy") else "BREACHING"
    outcomes = snapshot.get("outcomes", {})
    outcome_text = " ".join(
        f"{k}={v}" for k, v in sorted(outcomes.items())
    )
    return (
        f"slo: {status}  attainment={attainment:.3f} "
        f"(objective {snapshot['objective_ms']:.0f}ms, "
        f"budget {snapshot['error_budget']:.2%}, "
        f"burn {snapshot['burn_rate']:.2f}x)\n"
        f"     n={count}  p50={snapshot['p50_ms']:.1f}ms  "
        f"p95={snapshot['p95_ms']:.1f}ms  p99={snapshot['p99_ms']:.1f}ms  "
        f"{outcome_text}"
    )


def format_history(periods: list[dict]) -> str:
    """Historical attainment/latency trend table for
    ``devicescope obs --history`` — one row per rollup period from
    :meth:`repro.obs.store.TelemetryStore.history`."""
    if not periods:
        return "(no telemetry history recorded)"
    header = (
        f"{'period start (UTC)':<20} {'requests':>8} {'attain':>7} "
        f"{'p50':>9} {'p95':>9} {'p99':>9}  outcomes"
    )
    lines = [header, "-" * len(header)]
    from datetime import datetime, timezone

    for period in periods:
        start = datetime.fromtimestamp(
            period["period_start"], tz=timezone.utc
        ).strftime("%Y-%m-%d %H:%M")
        outcomes = period.get("outcomes", {})
        outcome_text = " ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))

        def _ms(value: float) -> str:
            import math

            return "-" if math.isnan(value) else _fmt_seconds(value / 1e3).strip()

        lines.append(
            f"{start:<20} {period['count']:>8d} "
            f"{period['attainment']:>7.3f} "
            f"{_ms(period['p50_ms']):>9} {_ms(period['p95_ms']):>9} "
            f"{_ms(period['p99_ms']):>9}  {outcome_text}"
        )
    return "\n".join(lines)


def format_batching(metrics_snapshot: dict) -> str:
    """One-line micro-batcher occupancy summary from ``serve.batch.*``.

    Returns ``""`` when the process has recorded no batched sweeps
    (e.g. the Playground, or a server with batching disabled), so the
    dashboard only grows the line where it means something.
    """

    def _total(name: str, field: str) -> float:
        metric = metrics_snapshot.get(name) or {}
        return sum(
            s.get(field, 0) or 0 for s in metric.get("series", [])
        )

    sweeps = _total("serve.batch.size", "count")
    if not sweeps:
        return ""
    windows = _total("serve.batch.size", "sum")
    coalesced = _total("serve.batch.coalesced_total", "value")
    fallback = _total("serve.batch.fallback_total", "value")
    occupancy = _total("serve.batch.occupancy", "value")
    return (
        f"batching: sweeps={int(sweeps)} windows={int(windows)} "
        f"avg_size={windows / sweeps:.2f} coalesced={int(coalesced)} "
        f"fallback={int(fallback)} occupancy={occupancy:.2f}"
    )


def format_top_tenants(metrics_snapshot: dict, top: int = 5) -> str:
    """Heaviest tenants by attributed CPU-ms, from the
    ``devicescope.tenant_*`` metric families.

    Derived purely from a registry snapshot so it renders identically
    live (``obs --watch``) and after a ``--json`` round trip. Returns
    ``""`` when no cost has been attributed (non-serve workloads).
    """
    cpu = metrics_snapshot.get("devicescope.tenant_cpu_ms_total") or {}
    rows: dict[str, dict] = {}
    for series in cpu.get("series", []):
        tenant = series.get("labels", {}).get("tenant", "?")
        rows[tenant] = {
            "cpu_ms": float(series.get("value", 0.0)), "windows": 0
        }
    if not rows:
        return ""
    windows = metrics_snapshot.get("devicescope.tenant_windows_swept_total") or {}
    for series in windows.get("series", []):
        tenant = series.get("labels", {}).get("tenant", "?")
        if tenant in rows:
            rows[tenant]["windows"] = int(series.get("value", 0))
    ordered = sorted(rows.items(), key=lambda kv: (-kv[1]["cpu_ms"], kv[0]))
    total_ms = sum(r["cpu_ms"] for r in rows.values()) or 1.0
    lines = [f"{'tenant':<24} {'cpu_ms':>10} {'share':>7} {'windows':>8}"]
    for tenant, acc in ordered[: max(1, top)]:
        lines.append(
            f"{tenant:<24} {acc['cpu_ms']:>10.1f} "
            f"{acc['cpu_ms'] / total_ms:>6.1%} {acc['windows']:>8d}"
        )
    return "\n".join(lines)


def format_flight(payload: dict) -> str:
    """Flight-recorder summary table for ``devicescope obs --flight``.

    ``payload`` is :meth:`repro.serve.service.DeviceScopeService.flight_payload`'s
    JSON shape (``stats`` + ``entries``) or equivalently
    ``{"stats": recorder.stats(), "entries": recorder.entries()}``.
    """
    stats = payload.get("stats", {})
    entries = payload.get("entries", [])
    by_reason = stats.get("by_reason", {})
    reason_text = (
        " ".join(f"{k}={v}" for k, v in sorted(by_reason.items())) or "-"
    )
    head = (
        f"flight: {stats.get('entries', 0)}/{stats.get('max_entries', 0)} "
        f"traces, {_fmt_bytes(stats.get('bytes', 0))} of "
        f"{_fmt_bytes(stats.get('max_bytes', 0))}  "
        f"(seen={stats.get('seen', 0)} kept={stats.get('kept', 0)} "
        f"evicted={stats.get('evicted', 0)})  {reason_text}"
    )
    if not entries:
        return head + "\n(no traces retained)"
    lines = [
        head,
        f"{'request_id':<18} {'trace_id':<34} {'kind':<14} "
        f"{'outcome':<12} {'reason':<8} {'duration':>10} {'spans':>6}",
    ]
    for entry in entries[-40:]:
        lines.append(
            f"{entry.get('request_id', '?'):<18} "
            f"{entry.get('trace_id', '')[:32]:<34} "
            f"{entry.get('kind', '?'):<14} "
            f"{entry.get('outcome', '?'):<12} "
            f"{entry.get('reason', '?'):<8} "
            f"{_fmt_seconds(entry.get('duration_s', 0.0)):>10} "
            f"{len(entry.get('spans') or []):>6d}"
        )
    return "\n".join(lines)


def format_dashboard(
    slo_snapshot: dict,
    metrics_snapshot: dict,
    cache_stats: dict | None = None,
    status: str | None = None,
) -> str:
    """Compact live text dashboard for ``devicescope obs --watch``."""
    sections = ["== health =="]
    if status is not None:
        sections.append(f"status: {status.upper()}")
    sections.append(format_slo(slo_snapshot))
    if cache_stats:
        sections.append(
            f"cache[{cache_stats.get('name', '?')}]: "
            f"size={cache_stats.get('size', 0)}/{cache_stats.get('maxsize', 0)} "
            f"hits={cache_stats.get('hits', 0)} "
            f"misses={cache_stats.get('misses', 0)} "
            f"hit_rate={cache_stats.get('hit_rate', 0.0):.2f}"
        )
    batching = format_batching(metrics_snapshot)
    if batching:
        sections.append(batching)
    top_tenants = format_top_tenants(metrics_snapshot)
    if top_tenants:
        sections.append("")
        sections.append("== top tenants (cpu) ==")
        sections.append(top_tenants)
    sections.append("")
    sections.append("== metrics ==")
    sections.append(format_metrics(metrics_snapshot))
    return "\n".join(sections)


def ascii_report(payload: dict, top: int = 10) -> str:
    """Full profile report: span trees + layer table + metric summary.

    ``payload`` is the ``devicescope profile --json`` structure
    (``spans`` / ``layers`` / ``metrics`` keys, all optional).
    """
    sections: list[str] = []
    spans = payload.get("spans") or []
    if spans:
        sections.append("== span tree (latest run) ==")
        sections.append(format_span_tree(spans[-1]))
    layers = payload.get("layers") or []
    if layers:
        sections.append(f"== top {top} slowest layers ==")
        leaves = [row for row in layers if row.get("leaf", True)]
        sections.append(format_layer_table((leaves or layers)[:top]))
    metrics = payload.get("metrics") or {}
    if metrics:
        sections.append("== metrics ==")
        sections.append(format_metrics(metrics))
    return "\n\n".join(sections) if sections else "(nothing recorded)"
