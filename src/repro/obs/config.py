"""Global observability switches.

Instrumentation in the hot paths (CamAL stages, the trainer, the
benchmark harnesses) is *zero-cost when disabled*: every call site
either checks :func:`enabled` first or goes through
:meth:`repro.obs.tracing.Tracer.span`, which returns a shared no-op
context manager while the flag is off. The flag defaults to off so test
and benchmark timings are unaffected.

Verbosity is a separate axis: structured log events are *recorded*
whenever observability is enabled, but only *written* to the stream when
``verbose`` is on (or the emitter is forced, e.g. ``Trainer(verbose=True)``).
``quiet`` overrides everything — library code never writes a byte.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "enabled_scope",
    "is_verbose",
    "set_verbose",
    "is_quiet",
    "set_quiet",
    "flight_enabled",
    "set_flight",
]

_ENABLED = False
_VERBOSE = False
_QUIET = False
#: Whether completed request scopes feed the flight recorder
#: (:mod:`repro.obs.flight`). On by default — recording is a ring-buffer
#: append plus a small size estimate, well inside the telemetry-overhead
#: budget — but operators who want the absolute minimum per-request cost
#: can switch the flight ring off without losing metrics or spans.
_FLIGHT = True


def enabled() -> bool:
    """Is the observability layer collecting data?"""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    global _ENABLED
    _ENABLED = bool(flag)


def enable() -> None:
    """Turn on metric/span/event collection process-wide."""
    set_enabled(True)


def disable() -> None:
    """Turn collection back off (the default state)."""
    set_enabled(False)


@contextmanager
def enabled_scope(flag: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) collection; restores on exit."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    try:
        yield
    finally:
        _ENABLED = previous


def is_verbose() -> bool:
    return _VERBOSE


def set_verbose(flag: bool) -> None:
    global _VERBOSE
    _VERBOSE = bool(flag)


def is_quiet() -> bool:
    return _QUIET


def set_quiet(flag: bool) -> None:
    global _QUIET
    _QUIET = bool(flag)


def flight_enabled() -> bool:
    """Do completed requests land in the flight recorder ring?"""
    return _ENABLED and _FLIGHT


def set_flight(flag: bool) -> None:
    global _FLIGHT
    _FLIGHT = bool(flag)
