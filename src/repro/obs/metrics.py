"""Metrics primitives: counters, gauges, histograms, and a registry.

Prometheus-flavoured but in-process: metrics hold labelled series
(``histogram.observe(0.3, method="camal")``), a :class:`MetricsRegistry`
owns named metrics, and :meth:`MetricsRegistry.snapshot` returns a plain
JSON-serializable dict for reports and the ``devicescope profile
--json`` export. All mutation is lock-protected so training threads and
a reporting thread can share a registry.

Histograms use *fixed* bucket edges chosen at construction time — the
default is an exponential ladder suited to wall-clock seconds (10 µs up
to ~84 s), matching the tracer's unit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "exponential_buckets",
    "linear_buckets",
    "DEFAULT_TIME_BUCKETS",
    "PROBABILITY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


def exponential_buckets(
    start: float = 1e-5, factor: float = 2.0, count: int = 24
) -> tuple[float, ...]:
    """``count`` bucket edges growing geometrically from ``start``."""
    if start <= 0:
        raise ValueError("start must be positive")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor**i for i in range(count))


def linear_buckets(start: float, width: float, count: int) -> tuple[float, ...]:
    """``count`` evenly spaced bucket edges starting at ``start``."""
    if width <= 0:
        raise ValueError("width must be positive")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start + width * i for i in range(count))


#: Default histogram edges: 10 µs … ~84 s, doubling (wall-clock seconds).
DEFAULT_TIME_BUCKETS = exponential_buckets(1e-5, 2.0, 24)

#: Edges for probability-valued observations (detection, CAM stats).
PROBABILITY_BUCKETS = linear_buckets(0.0, 0.1, 11)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared name/help/lock plumbing for the three metric types."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def snapshot(self) -> dict:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[_LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict:
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in self._values.items()
            ]
        return {"type": self.kind, "help": self.help, "series": series}

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Metric):
    """Last-write-wins scalar, one series per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(delta)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), float("nan"))

    def snapshot(self) -> dict:
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in self._values.items()
            ]
        return {"type": self.kind, "help": self.help, "series": series}

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


@dataclass
class _HistogramSeries:
    """One label set's accumulated distribution."""

    counts: np.ndarray  # len(edges) + 1 buckets; last is overflow
    total: float = 0.0
    count: int = 0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))


class Histogram(_Metric):
    """Fixed-bucket distribution of observations.

    Bucket ``i`` counts values ``v`` with ``edges[i-1] < v <= edges[i]``
    (the first bucket catches everything up to ``edges[0]``, the last
    everything above ``edges[-1]``).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ):
        super().__init__(name, help)
        edges = tuple(float(e) for e in (buckets or DEFAULT_TIME_BUCKETS))
        if len(edges) < 1:
            raise ValueError("need at least one bucket edge")
        if any(nxt <= prev for prev, nxt in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = edges
        self._edge_array = np.asarray(edges, dtype=np.float64)
        self._series: dict[_LabelKey, _HistogramSeries] = {}

    def _get_series(self, key: _LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(
                counts=np.zeros(len(self.edges) + 1, dtype=np.int64)
            )
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: object) -> None:
        self.observe_many(np.asarray([value], dtype=np.float64), **labels)

    def observe_many(self, values: np.ndarray, **labels: object) -> None:
        """Vectorized ingest of an array of observations."""
        values = np.asarray(values, dtype=np.float64).ravel()
        values = values[np.isfinite(values)]
        if values.size == 0:
            return
        idx = np.searchsorted(self._edge_array, values, side="left")
        bucket_counts = np.bincount(idx, minlength=len(self.edges) + 1)
        key = _label_key(labels)
        with self._lock:
            series = self._get_series(key)
            series.counts += bucket_counts
            series.total += float(values.sum())
            series.count += int(values.size)
            series.min = min(series.min, float(values.min()))
            series.max = max(series.max, float(values.max()))

    def series(self, **labels: object) -> dict | None:
        """Snapshot of one label set (None when never observed)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return None
            return self._series_dict(series)

    def _series_dict(self, series: _HistogramSeries) -> dict:
        return {
            "buckets": series.counts.tolist(),
            "count": series.count,
            "sum": series.total,
            "mean": series.total / series.count if series.count else 0.0,
            "min": series.min if series.count else 0.0,
            "max": series.max if series.count else 0.0,
        }

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        holding the ``q``-th observation; overflow clamps to the last
        finite edge).

        **Empty-series contract**: a label set that was never observed —
        never created, reset since, or fed only non-finite values (which
        ``observe_many`` filters out) — returns ``nan``, never a bucket
        edge. Callers doing SLO math must propagate the "no data" state
        explicitly rather than read a fabricated latency. ``q`` outside
        ``[0, 1]`` raises regardless of state.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return float("nan")
            target = q * series.count
            cumulative = np.cumsum(series.counts)
            bucket = int(np.searchsorted(cumulative, target, side="left"))
        return self.edges[min(bucket, len(self.edges) - 1)]

    def snapshot(self) -> dict:
        with self._lock:
            series = [
                {"labels": dict(key), **self._series_dict(value)}
                for key, value in self._series.items()
            ]
        return {
            "type": self.kind,
            "help": self.help,
            "edges": list(self.edges),
            "series": series,
        }

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Re-registering a name with the same type returns the existing
    metric; a type clash raises. ``snapshot()``/``reset()`` walk every
    registered metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict:
        """All metrics as one plain JSON-serializable dict."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot() for name, metric in sorted(metrics.items())}

    def reset(self) -> None:
        """Zero every series (metric objects stay registered)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def clear(self) -> None:
        """Drop every registered metric entirely."""
        with self._lock:
            self._metrics.clear()
