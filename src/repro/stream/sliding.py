"""Sliding-window CamAL: append-incremental, bit-identical localization.

:class:`SlidingCamAL` tracks a :class:`~repro.stream.LiveStore` and
keeps, per ensemble member, the final feature maps of the most recent
window. On each :meth:`localize` it recomputes the backbone only over
the regions an append (or a window slide) can have changed and splices
the rest from cache — and the spliced result is **bit-identical** to a
cold ``CamAL.localize_watts`` over the same window, on every
:class:`~repro.core.CamALResult` field (the ``tests/stream``
equivalence harness pins this).

Why bitwise reuse is even possible (DESIGN.md §13):

* ``Conv1d`` lowers to fixed :data:`~repro.nn.conv.TIME_TILE` GEMM
  tiles along the output-time axis, so position ``t``'s bits depend
  only on its tile's content and shape — never on the total window
  length. A suffix sweep starting on a tile boundary therefore
  reproduces the full sweep's tail exactly.
* Every other backbone op (BatchNorm in eval mode, ReLU, the residual
  add) is pointwise, so reuse regions compose across the 9-conv stack
  by receptive-field arithmetic: a member with one-sided halos
  ``(Rl, Rr)`` (:func:`receptive_halo`) produces identical features at
  any position whose ``[t - Rl, t + Rr]`` context is unchanged, lies
  inside real data on both sweeps, and sits in a full GEMM tile of the
  cached sweep.
* Everything downstream of the feature maps — GAP, the linear head,
  softmax, CAM normalization, attention, thresholding — is recomputed
  fresh on the assembled features each sync: identical inputs, O(L)
  cost, identical bits by construction. Validation and
  standardization likewise rerun in full, which is what makes repairs
  safe: a trailing NaN gap repaired by edge-fill *changes its repaired
  values* once later appends turn it into an interior gap, and the
  byte-level prefix comparison below catches exactly that.

Degraded windows (PR 4 taxonomy) short-circuit through
``CamAL._localize_partial`` without touching the feature cache — and
the serve layer never caches them.

Training-mode members are rejected outright: a training-mode BatchNorm
couples every position through batch statistics, so no prefix is ever
stable (production paths run ``eval()`` ensembles, as the batch
equivalence suite documents).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from .. import obs, quality
from ..core.camal import CamAL, CamALResult
from ..nn import functional as F
from ..nn.conv import TIME_TILE, Conv1d
from ..nn.module import inference_mode
from ..robust.validate import DEFAULT_MAX_GAP, Verdict, validate_window
from .live import LiveStore

__all__ = ["receptive_halo", "SlidingCamAL", "StreamLocalization"]


def receptive_halo(module) -> tuple[int, int]:
    """One-sided receptive halos ``(left, right)`` of a conv stack.

    Sums the per-conv pad amounts over every ``Conv1d`` in the module
    tree — an exact bound for a sequential stack and a safe
    over-estimate across parallel branches (the ResNet shortcut's 1×1
    convs contribute zero). Raises for layers the streaming reuse
    contract cannot cover (strided or non-"same" convolutions, which
    break the position alignment the splice relies on).
    """
    left = right = 0
    for _, m in module.named_modules():
        if isinstance(m, Conv1d):
            if m.stride != 1 or m.padding != "same":
                raise ValueError(
                    "streaming reuse requires stride-1 'same'-padding "
                    f"convolutions; found stride={m.stride}, "
                    f"padding={m.padding!r}"
                )
            total = m.span - 1
            left += total // 2
            right += total - total // 2
    return left, right


def _ceil_tile(n: int) -> int:
    return -(-n // TIME_TILE) * TIME_TILE


@dataclass
class StreamLocalization:
    """One incremental sync: the result plus its provenance."""

    result: CamALResult
    start: int  # absolute index of the window's first sample
    end: int  # absolute index one past the window's last sample
    reused: int  # feature samples spliced from cache (summed over members)
    computed: int  # feature samples recomputed (summed over members)

    @property
    def reuse_ratio(self) -> float:
        denom = self.reused + self.computed
        return self.reused / denom if denom else 0.0


class SlidingCamAL:
    """Incremental localization over a :class:`LiveStore` window.

    Parameters
    ----------
    camal:
        The (eval-mode) model; its ``_finish`` post-processing and
        validation defaults are reused verbatim so results stay
        bit-identical to ``camal.localize_watts``.
    store:
        The live series. The instance tracks ``store.total`` and slides
        its window in :data:`~repro.nn.conv.TIME_TILE` hops to keep at
        most ``window`` samples.
    window:
        Maximum window length; once the store has grown past it the
        analyzed window is the most recent
        ``(window - slack - TIME_TILE, window]`` samples (tile-aligned
        slides keep splices exact).
    slack:
        Rebase hysteresis. A window slide invalidates the left-edge
        features (the zero-padding context moves), costing every member
        a head re-sweep — so instead of sliding a tile at a time, the
        base jumps ``slack`` further than strictly needed and then sits
        still while the next ``slack`` samples arrive. Appends between
        rebases pay only the receptive-field tail. Default: four tiles.
    max_gap:
        Repair budget forwarded to ``validate_window`` (the
        ``localize_watts`` default).
    appliance:
        Optional attribution for quality monitoring, mirroring
        ``localize_watts(appliance=...)``.
    """

    def __init__(
        self,
        camal: CamAL,
        store: LiveStore,
        window: int = 1440,
        slack: int = 4 * TIME_TILE,
        max_gap: int = DEFAULT_MAX_GAP,
        appliance: str | None = None,
    ):
        if window < TIME_TILE:
            raise ValueError(
                f"window must be >= TIME_TILE ({TIME_TILE}), got {window}"
            )
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        if any(m.training for m in camal.ensemble.members):
            raise ValueError(
                "SlidingCamAL requires an eval-mode ensemble: training-mode "
                "BatchNorm couples positions through batch statistics, so "
                "no feature prefix is ever reusable — call ensemble.eval()"
            )
        self.camal = camal
        self.store = store
        self.window = int(window)
        self.slack = int(slack)
        self.max_gap = int(max_gap)
        self.appliance = appliance
        self._halos = [
            receptive_halo(member) for member in camal.ensemble.members
        ]
        self._lock = threading.Lock()
        self._base: int | None = None  # current window start (absolute)
        self._cached_base: int | None = None
        self._cached_x: np.ndarray | None = None  # standardized window
        self._features: list[np.ndarray] | None = None  # per member (1,C,L)
        self.reused_total = 0
        self.computed_total = 0
        self.syncs = 0

    @property
    def reuse_ratio(self) -> float:
        """Lifetime fraction of feature samples served from cache."""
        denom = self.reused_total + self.computed_total
        return self.reused_total / denom if denom else 0.0

    def localize(self) -> StreamLocalization:
        """Sync to the store's current tail and localize the window."""
        with self._lock:
            with obs.request(kind="stream.localize"), obs.span(
                "stream.localize"
            ) as root:
                loc = self._sync()
                root.set(
                    start=loc.start, end=loc.end,
                    reused=loc.reused, computed=loc.computed,
                    reuse_ratio=loc.reuse_ratio,
                )
        self._record(loc)
        return loc

    # -- internals ----------------------------------------------------------

    def _advance_base(self, end: int) -> int:
        """Slide the window start in tile hops; keep tile phase."""
        if self._base is None:
            base = self.store.first
        else:
            base = self._base
            behind = self.store.first - base
            if behind > 0:  # eviction outran the window: realign, same phase
                base += _ceil_tile(behind)
        over = end - base - self.window
        if over > 0:
            # Overshoot by ``slack`` so the base then sits still while
            # the next ``slack`` samples stream in — head re-sweeps
            # amortize over many appends. Trim the overshoot (never
            # below the tile-aligned minimum hop that keeps the window
            # within ``self.window``) when the window is too short to
            # afford it.
            hop = _ceil_tile(over + self.slack)
            floor_hop = _ceil_tile(over)
            while hop > floor_hop and end - base - hop < 2:
                hop -= TIME_TILE
            base += hop
        self._base = base
        return base

    def _sync(self) -> StreamLocalization:
        camal = self.camal
        end = self.store.total
        base = self._advance_base(end)
        raw = self.store.read(base, max(end - base, 0))
        self.syncs += 1
        repaired_row, report = validate_window(raw, max_gap=self.max_gap)
        is_repaired = report.verdict is Verdict.REPAIRED
        if not report.usable:
            # Mirror ``_localize_watts``'s degraded branch exactly; the
            # feature cache is left untouched (it still describes the
            # last usable window and stays valid for the next sync).
            camal._record_robust(
                np.array([is_repaired]), np.array([False])
            )
            result = camal._localize_partial(
                raw[None],
                [raw if repaired_row is None else repaired_row],
                np.array([False]),
                np.array([is_repaired]),
            )
            quality.observe(self.appliance, raw[None], result)
            return StreamLocalization(result, base, end, 0, 0)
        eff = raw if repaired_row is None else repaired_row
        if is_repaired:
            camal._record_robust(np.array([True]), np.array([True]))
        x = camal.scaler.transform(eff[None])[0]
        changed_from, shift, l_old = self._diff(x, base)
        features, reused, computed = self._assemble(
            x, changed_from, shift, l_old
        )
        member_probabilities = {
            i: F.softmax(logits, axis=1)[:, 1]
            for i, (_, logits) in enumerate(features)
        }
        probabilities = np.mean(list(member_probabilities.values()), axis=0)
        detected = probabilities > camal.config.detection_threshold
        raw_cams = np.stack(
            [
                member.cam_from_features(feat)
                for member, (feat, _) in zip(
                    camal.ensemble.members, features
                )
            ]
        )
        result = camal._finish(
            x[None, None, :], probabilities, detected, raw_cams,
            member_probabilities,
        )
        if is_repaired:
            result.repaired = np.array([True])
        camal._record_detection(result.probabilities)
        camal._record_cam_stats(result.cam)
        quality.observe(self.appliance, raw[None], result)
        self._cached_base = base
        self._cached_x = x
        self._features = [feat for feat, _ in features]
        self.reused_total += reused
        self.computed_total += computed
        return StreamLocalization(result, base, end, reused, computed)

    def _diff(self, x: np.ndarray, base: int) -> tuple[int, int, int]:
        """First changed position of ``x`` vs the cached window.

        Returns ``(changed_from, shift, l_old)`` in new-window
        coordinates; ``changed_from`` is the length of the byte-equal
        overlap prefix. Comparing *standardized repaired* inputs is
        what makes repair drift safe: any position whose repaired value
        changed (e.g. a trailing edge-fill becoming an interior
        interpolation) compares unequal and is recomputed.
        """
        if self._features is None or self._cached_x is None:
            return 0, 0, 0
        shift = base - self._cached_base
        old = self._cached_x
        if shift < 0 or shift % TIME_TILE:
            # Defensive: the base only ever advances in tile hops.
            return 0, 0, 0
        overlap = min(old.size - shift, x.size)
        if overlap <= 0:
            return 0, shift, old.size
        a = old[shift : shift + overlap]
        b = x[:overlap]
        # NaN-safe bitwise comparison (usable windows are finite, but a
        # byte view keeps the contract exact regardless).
        neq = a.view(np.uint64) != b.view(np.uint64)
        changed_from = int(np.argmax(neq)) if neq.any() else overlap
        return changed_from, shift, old.size

    def _assemble(
        self, x: np.ndarray, changed_from: int, shift: int, l_old: int
    ) -> tuple[list[tuple[np.ndarray, np.ndarray]], int, int]:
        """Per-member ``(features, logits)`` with prefix splicing.

        For each member, positions ``[head, stable_end)`` are bitwise
        stable and spliced from cache; ``[0, head)`` (only after a
        window slide — the left zero-padding moved) and
        ``[stable_end, L)`` are recomputed via tile-aligned sub-sweeps
        whose halo-polluted edges are discarded.
        """
        camal = self.camal
        l_new = x.size
        x3 = x[None, None, :]
        # Positions of the *cached* sweep past this limit sat in its
        # final partial GEMM tile or depended on its right zero-padding
        # — neither reproduces in the longer sweep.
        if l_old:
            tile_full = l_old if l_old % TIME_TILE == 0 else (
                TIME_TILE * (l_old // TIME_TILE)
            )
            stable_limit = min(changed_from, l_old - shift, tile_full - shift)
        else:
            stable_limit = 0
        out: list[tuple[np.ndarray, np.ndarray]] = []
        reused = computed = 0
        for index, (member, (r_left, r_right)) in enumerate(
            zip(camal.ensemble.members, self._halos)
        ):
            head = r_left if shift > 0 else 0
            stable_end = min(stable_limit - r_right, l_new)
            head_len = _ceil_tile(r_left + r_right) if head else 0
            tail_start = TIME_TILE * ((stable_end - r_left) // TIME_TILE)
            if (
                self._features is None
                or stable_end <= head
                or tail_start < 0
                or head_len >= l_new
            ):
                with inference_mode():
                    feat, logits = member.forward_features(x3)
                computed += l_new
                out.append((feat, logits))
                continue
            old_feat = self._features[index]
            # Match the backbone's output layout exactly: the conv
            # lowering emits ``(N, L, C).transpose(0, 2, 1)`` and every
            # pointwise op downstream preserves those strides, so GAP
            # and the CAM contraction reduce over a stride-C axis. The
            # assembled buffer must share that layout or their pairwise
            # summations block differently and the logits drift by ULPs.
            new_feat = np.empty(
                (1, l_new, old_feat.shape[1]), dtype=old_feat.dtype
            ).transpose(0, 2, 1)
            new_feat[0, :, head:stable_end] = old_feat[
                0, :, head + shift : stable_end + shift
            ]
            if head:
                with inference_mode():
                    head_feat, _ = member.forward_features(
                        x3[:, :, :head_len]
                    )
                new_feat[0, :, :head] = head_feat[0, :, :head]
                computed += head_len
            if stable_end < l_new:
                with inference_mode():
                    tail_feat, _ = member.forward_features(
                        x3[:, :, tail_start:]
                    )
                new_feat[0, :, stable_end:] = tail_feat[
                    0, :, stable_end - tail_start :
                ]
                computed += l_new - tail_start
            reused += stable_end - head
            # The head — GAP then the linear classifier — recomputes on
            # the assembled maps exactly as ``forward_features`` does.
            with inference_mode():
                logits = member.fc(member.gap(new_feat))
            out.append((new_feat, logits))
        return out, reused, computed

    def _record(self, loc: StreamLocalization) -> None:
        if not obs.enabled():
            return
        obs.registry.counter(
            "stream.localize_total",
            help="incremental live localizations",
        ).inc()
        obs.registry.counter(
            "stream.samples_reused_total",
            help="feature samples spliced from the sliding cache",
        ).inc(loc.reused)
        obs.registry.counter(
            "stream.samples_recomputed_total",
            help="feature samples recomputed on sync",
        ).inc(loc.computed)
        obs.registry.histogram(
            "stream.reuse_ratio",
            help="per-sync fraction of feature samples served from cache",
            buckets=obs.PROBABILITY_BUCKETS,
        ).observe(loc.reuse_ratio)
