"""Streaming incremental localization (DESIGN.md §13).

``LiveStore`` retains a per-house resampled series with absolute
indexing and an append epoch; ``SlidingCamAL`` localizes a sliding
window over it, splicing cached per-member feature maps so each append
only re-sweeps the receptive-field tail — bit-identical to a cold
``CamAL.localize_watts`` over the same window (``tests/stream``).
"""

from .live import LiveStore
from .sliding import SlidingCamAL, StreamLocalization, receptive_halo

__all__ = [
    "LiveStore",
    "SlidingCamAL",
    "StreamLocalization",
    "receptive_halo",
]
