"""Per-house live series: a ring buffer with incremental resampling.

Production meters append a few samples per minute per house;
:class:`LiveStore` is the serve layer's retention primitive for that
feed (the ``shelly_pull`` append-ingest model of the exemplar energy
analyzer). Three properties matter downstream:

* **Absolute addressing.** Every sample keeps its absolute index (the
  count of resampled samples ever appended); :meth:`read` addresses
  windows ``[start, start + length)`` in those coordinates even after
  eviction, so :class:`~repro.stream.SlidingCamAL` can reason about
  exactly which positions moved under it.
* **Incremental resampling that only touches the tail.** Appends at a
  finer native rate are block-mean downsampled exactly like
  :func:`repro.datasets.resample_mean` — and because block means are
  block-local, completed blocks are immutable: the store keeps at most
  ``factor - 1`` pending raw samples and the resampled prefix never
  changes. ``LiveStore`` content after any split of a raw feed into
  appends is bit-identical to ``resample_mean`` over the concatenated
  feed (pinned by ``tests/stream``).
* **An append epoch for cache keys.** ``epoch`` (the absolute total)
  together with the process-unique ``uid`` identifies the content of
  any live window; see :func:`repro.core.cache.live_window_key`.

``on_full`` picks the retention policy at capacity: ``"raise"``
(quota mode — the tenancy layer's 2M-sample house quota, surfaced as
HTTP 413) or ``"evict"`` (ring mode — the oldest samples fall off,
sized for standalone live views).
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from .. import obs

__all__ = ["LiveStore"]

#: Process-unique store ids: a deleted-and-recreated house must never
#: alias a previous store's cache entries (see ``live_window_key``).
_UIDS = itertools.count()


class LiveStore:
    """Append-only resampled series with bounded retention.

    Parameters
    ----------
    capacity:
        Maximum resampled samples retained (and, in ``"raise"`` mode,
        ever accepted). The backing buffer grows by amortized doubling
        up to this bound, so small stores stay small.
    step_s:
        Seconds per *stored* sample (the model grid).
    on_full:
        ``"raise"`` — appends past ``capacity`` raise
        :class:`OverflowError` (quota mode); ``"evict"`` — the oldest
        samples are dropped to make room (ring mode).
    """

    def __init__(
        self,
        capacity: int,
        step_s: float = 60.0,
        on_full: str = "raise",
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if on_full not in ("raise", "evict"):
            raise ValueError(f"on_full must be 'raise' or 'evict', got {on_full!r}")
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        self.uid = next(_UIDS)
        self.capacity = int(capacity)
        self.step_s = float(step_s)
        self.on_full = on_full
        self._lock = threading.Lock()
        self._buf = np.empty(0, dtype=np.float64)
        self._head = 0  # buffer index of absolute position ``_first``
        self._first = 0  # absolute index of the oldest retained sample
        self._total = 0  # absolute count of resampled samples appended
        self._pending = np.empty(0, dtype=np.float64)  # raw tail < factor
        self._pending_factor = 1

    # -- introspection ------------------------------------------------------

    @property
    def total(self) -> int:
        """Resampled samples ever appended (the append epoch)."""
        return self._total

    @property
    def first(self) -> int:
        """Absolute index of the oldest sample still retained."""
        return self._first

    @property
    def n_retained(self) -> int:
        return self._total - self._first

    @property
    def pending(self) -> int:
        """Raw samples waiting for their resample block to complete."""
        return int(self._pending.size)

    @property
    def epoch(self) -> tuple[int, int]:
        """``(uid, total)`` — identifies live-window content for caches."""
        return (self.uid, self._total)

    # -- ingestion ----------------------------------------------------------

    def plan(self, n_raw: int, factor: int = 1) -> int:
        """Resampled samples an append of ``n_raw`` would produce."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        if factor == 1:
            return int(n_raw)
        carried = self._pending.size if factor == self._pending_factor else 0
        return (carried + int(n_raw)) // factor

    def append(self, watts: np.ndarray, factor: int = 1) -> int:
        """Append raw readings; returns resampled samples committed.

        ``factor`` is the block size of the mean-downsample from the
        native rate to the stored grid (1 = already on the grid). The
        pending remainder carries between appends of the same factor;
        switching factors while a remainder is pending is a caller
        error (flush on a block boundary first).

        In ``"raise"`` mode an append that would exceed ``capacity``
        raises :class:`OverflowError` *without* mutating any state —
        neither the buffer nor the pending remainder.
        """
        watts = np.asarray(watts, dtype=np.float64)
        if watts.ndim != 1:
            raise ValueError("append expects a flat array of watt readings")
        if factor < 1:
            raise ValueError("factor must be >= 1")
        with self._lock:
            if self._pending.size and factor != self._pending_factor:
                raise ValueError(
                    f"append factor changed from {self._pending_factor} to "
                    f"{factor} with {self._pending.size} raw samples pending; "
                    "flush on a block boundary first"
                )
            if watts.size == 0:
                return 0  # explicit no-op: no epoch bump, no quota check
            if factor == 1:
                resampled, remainder = watts, np.empty(0, dtype=np.float64)
            else:
                joined = (
                    np.concatenate([self._pending, watts])
                    if self._pending.size
                    else watts
                )
                n_blocks = joined.size // factor
                split = n_blocks * factor
                # Block means are block-local: this is bit-identical to
                # resample_mean over the full raw feed, however the feed
                # was split into appends.
                resampled = (
                    joined[:split].reshape(n_blocks, factor).mean(axis=1)
                    if n_blocks
                    else np.empty(0, dtype=np.float64)
                )
                remainder = joined[split:].copy()
            if self.on_full == "raise" and (
                self.n_retained + resampled.size > self.capacity
            ):
                raise OverflowError(
                    f"live store holds {self.n_retained} of its "
                    f"{self.capacity}-sample quota; appending "
                    f"{resampled.size} resampled samples does not fit"
                )
            self._pending = remainder
            self._pending_factor = factor
            if resampled.size:
                self._write(resampled)
        if obs.enabled():
            obs.registry.counter(
                "stream.append.batches_total",
                help="append batches accepted by live stores",
            ).inc()
            obs.registry.counter(
                "stream.append.samples_total",
                help="resampled samples committed to live stores",
            ).inc(int(resampled.size))
        return int(resampled.size)

    def _write(self, samples: np.ndarray) -> None:
        """Commit resampled samples, growing or wrapping the buffer."""
        m = samples.size
        if m >= self.capacity:
            # The batch alone fills the ring ("evict" mode only — quota
            # mode already raised): keep exactly the last ``capacity``.
            self._buf = samples[m - self.capacity :].copy()
            self._head = 0
            self._total += m
            self._first = self._total - self.capacity
            return
        needed = self.n_retained + m
        if needed > self._buf.size and self._buf.size < self.capacity:
            grown = np.empty(
                min(self.capacity, max(needed, 2 * self._buf.size, 256)),
                dtype=np.float64,
            )
            grown[: self.n_retained] = self._read_retained()
            self._buf = grown
            self._head = 0
        if needed > self._buf.size:  # at capacity: evict the oldest
            excess = needed - self._buf.size
            self._first += excess
            self._head = (self._head + excess) % self._buf.size
        # Write ``samples`` at the ring positions of [total, total + m).
        start = (self._head + self.n_retained) % self._buf.size
        end = start + m
        if end <= self._buf.size:
            self._buf[start:end] = samples
        else:
            split = self._buf.size - start
            self._buf[start:] = samples[:split]
            self._buf[: end - self._buf.size] = samples[split:]
        self._total += m

    def _read_retained(self) -> np.ndarray:
        """The retained samples in order (contiguous copy)."""
        n = self.n_retained
        if n == 0:
            return np.empty(0, dtype=np.float64)
        start = self._head
        end = start + n
        if end <= self._buf.size:
            return self._buf[start:end].copy()
        return np.concatenate(
            [self._buf[start:], self._buf[: end - self._buf.size]]
        )

    # -- reads --------------------------------------------------------------

    def read(self, start: int, length: int) -> np.ndarray:
        """Copy of absolute window ``[start, start + length)``.

        Raises :class:`ValueError` if any requested sample was evicted
        or not yet appended.
        """
        if length < 0:
            raise ValueError("length must be >= 0")
        with self._lock:
            if start < self._first or start + length > self._total:
                raise ValueError(
                    f"window [{start}, {start + length}) outside retained "
                    f"range [{self._first}, {self._total})"
                )
            if length == 0:
                return np.empty(0, dtype=np.float64)
            i0 = (self._head + (start - self._first)) % max(self._buf.size, 1)
            end = i0 + length
            if end <= self._buf.size:
                return self._buf[i0:end].copy()
            return np.concatenate(
                [self._buf[i0:], self._buf[: end - self._buf.size]]
            )

    def snapshot(self) -> np.ndarray:
        """Every retained sample, oldest first (a copy)."""
        with self._lock:
            return self._read_retained()

    def __len__(self) -> int:
        return self.n_retained

    def __repr__(self) -> str:
        return (
            f"LiveStore(uid={self.uid}, total={self._total}, "
            f"retained={self.n_retained}/{self.capacity}, "
            f"pending={self.pending}, on_full={self.on_full!r})"
        )
