"""Evaluation: metrics, the benchmark runner, and the Fig. 3 sweep."""

from .analysis import (
    ThresholdPoint,
    best_threshold,
    bootstrap_metric,
    expected_calibration_error,
    threshold_sweep,
)
from .benchmark import CAMAL_NAME, BenchmarkResult, BenchmarkRunner, MethodResult
from .energy import EnergyEstimate, energy_kwh, estimate_energy
from .events import Event, event_metrics, extract_events, match_events
from .loho import LOHOFold, LOHOResult, leave_one_house_out
from .label_efficiency import (
    EfficiencyCurve,
    EfficiencyPoint,
    LabelEfficiencyResult,
    LabelEfficiencySweep,
    stratified_subsample,
)
from .per_house import per_house_detection, per_house_localization
from .usage import UsageProfile, merge_close_events, usage_profile
from .metrics import (
    METRIC_NAMES,
    ConfusionCounts,
    Metrics,
    compute_metrics,
    confusion_counts,
    detection_metrics,
    localization_metrics,
)
from .results import (
    format_benchmark,
    format_efficiency,
    format_loho,
    format_table,
    load_json,
    save_json,
)

__all__ = [
    "METRIC_NAMES",
    "ConfusionCounts",
    "Metrics",
    "confusion_counts",
    "compute_metrics",
    "detection_metrics",
    "localization_metrics",
    "CAMAL_NAME",
    "ThresholdPoint",
    "threshold_sweep",
    "best_threshold",
    "expected_calibration_error",
    "bootstrap_metric",
    "EnergyEstimate",
    "energy_kwh",
    "estimate_energy",
    "Event",
    "LOHOFold",
    "LOHOResult",
    "leave_one_house_out",
    "extract_events",
    "match_events",
    "event_metrics",
    "per_house_detection",
    "per_house_localization",
    "UsageProfile",
    "merge_close_events",
    "usage_profile",
    "MethodResult",
    "BenchmarkResult",
    "BenchmarkRunner",
    "EfficiencyPoint",
    "EfficiencyCurve",
    "LabelEfficiencyResult",
    "LabelEfficiencySweep",
    "stratified_subsample",
    "format_table",
    "format_benchmark",
    "format_efficiency",
    "format_loho",
    "save_json",
    "load_json",
]
