"""Benchmark runner: CamAL vs the six baselines on one task.

Produces the rows behind the DeviceScope benchmark frame (§III): for a
given dataset × appliance × window length, every method is trained with
its own supervision regime and evaluated on held-out houses for both
detection (window level) and localization (timestep level), together
with the number of labels its training consumed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core import CamAL, CamALConfig
from ..datasets import WindowSet, count_strong_labels, count_weak_labels
from ..models import (
    TrainConfig,
    get_baseline_spec,
    list_baselines,
    train_classifier,
    train_mil,
    train_seq2seq,
)
from .metrics import Metrics, detection_metrics, localization_metrics

__all__ = ["MethodResult", "BenchmarkResult", "BenchmarkRunner"]

#: Registry name used for the paper's method.
CAMAL_NAME = "camal"


@dataclass
class MethodResult:
    """One method's scores on one task."""

    method: str
    display_name: str
    supervision: str
    detection: Metrics
    localization: Metrics
    labels_used: int
    train_seconds: float

    def row(self, kind: str = "localization") -> dict:
        metrics = self.localization if kind == "localization" else self.detection
        return {
            "method": self.display_name,
            "supervision": self.supervision,
            "labels": self.labels_used,
            **metrics.as_dict(),
        }


@dataclass
class BenchmarkResult:
    """All methods' scores on one dataset × appliance × window task."""

    dataset: str
    appliance: str
    window: str | int
    n_train_windows: int
    n_test_windows: int
    results: list[MethodResult] = field(default_factory=list)

    def get(self, method: str) -> MethodResult:
        for result in self.results:
            if result.method == method:
                return result
        raise KeyError(
            f"no result for {method!r}; available: "
            f"{', '.join(r.method for r in self.results)}"
        )

    @property
    def methods(self) -> list[str]:
        return [r.method for r in self.results]

    def to_rows(self, kind: str = "localization") -> list[dict]:
        if kind not in ("detection", "localization"):
            raise ValueError("kind must be 'detection' or 'localization'")
        return [r.row(kind) for r in self.results]

    def to_dict(self) -> dict:
        """JSON-serializable summary (used by the app's benchmark frame)."""
        return {
            "dataset": self.dataset,
            "appliance": self.appliance,
            "window": self.window,
            "n_train_windows": self.n_train_windows,
            "n_test_windows": self.n_test_windows,
            "methods": {
                r.method: {
                    "display_name": r.display_name,
                    "supervision": r.supervision,
                    "labels_used": r.labels_used,
                    "train_seconds": r.train_seconds,
                    "detection": r.detection.as_dict(),
                    "localization": r.localization.as_dict(),
                }
                for r in self.results
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchmarkResult":
        """Rebuild from :meth:`to_dict` output (JSON round trip)."""
        result = cls(
            dataset=payload["dataset"],
            appliance=payload["appliance"],
            window=payload["window"],
            n_train_windows=int(payload["n_train_windows"]),
            n_test_windows=int(payload["n_test_windows"]),
        )
        for name, entry in payload["methods"].items():
            result.results.append(
                MethodResult(
                    method=name,
                    display_name=entry["display_name"],
                    supervision=entry["supervision"],
                    detection=Metrics.from_dict(entry["detection"]),
                    localization=Metrics.from_dict(entry["localization"]),
                    labels_used=int(entry["labels_used"]),
                    train_seconds=float(entry["train_seconds"]),
                )
            )
        return result


class BenchmarkRunner:
    """Trains and scores every method on one train/test window pair.

    Parameters
    ----------
    train_windows, test_windows:
        Disjoint-household window sets sharing a scaler.
    train_config:
        Shared training hyperparameters.
    camal_kernel_sizes, camal_filters, camal_config:
        CamAL architecture/inference knobs.
    seed:
        Base seed for model initialization.
    """

    def __init__(
        self,
        train_windows: WindowSet,
        test_windows: WindowSet,
        train_config: TrainConfig | None = None,
        camal_kernel_sizes: tuple[int, ...] = (5, 7, 9, 15),
        camal_filters: tuple[int, int, int] = (8, 16, 16),
        camal_config: CamALConfig | None = None,
        seed: int = 0,
        dataset_name: str = "",
    ):
        if len(train_windows) == 0 or len(test_windows) == 0:
            raise ValueError("train and test window sets must be non-empty")
        if train_windows.window_length != test_windows.window_length:
            raise ValueError("train/test window lengths differ")
        self.train_windows = train_windows
        self.test_windows = test_windows
        self.train_config = train_config or TrainConfig()
        self.camal_kernel_sizes = camal_kernel_sizes
        self.camal_filters = camal_filters
        self.camal_config = camal_config
        self.seed = seed
        self.dataset_name = dataset_name

    # -- method adapters ----------------------------------------------------

    def _evaluate(
        self,
        name: str,
        display_name: str,
        supervision: str,
        probabilities: np.ndarray,
        status: np.ndarray,
        labels_used: int,
        train_seconds: float,
    ) -> MethodResult:
        return MethodResult(
            method=name,
            display_name=display_name,
            supervision=supervision,
            detection=detection_metrics(self.test_windows.y_weak, probabilities),
            localization=localization_metrics(
                self.test_windows.y_strong, status
            ),
            labels_used=labels_used,
            train_seconds=train_seconds,
        )

    def _record_timings(
        self, method: str, train_seconds: float, eval_seconds: float
    ) -> None:
        if obs.enabled():
            obs.registry.histogram(
                "benchmark.train_seconds", help="per-method training wall time"
            ).observe(train_seconds, method=method)
            obs.registry.histogram(
                "benchmark.eval_seconds", help="per-method inference wall time"
            ).observe(eval_seconds, method=method)
        obs.log.event(
            "benchmark.method",
            method=method,
            train_seconds=train_seconds,
            eval_seconds=eval_seconds,
        )

    def run_camal(self, train_windows: WindowSet | None = None) -> MethodResult:
        """Train and score CamAL (weak supervision)."""
        windows = train_windows or self.train_windows
        start = time.perf_counter()
        with obs.span("benchmark.train", method=CAMAL_NAME, n_windows=len(windows)):
            model = CamAL.train(
                windows,
                kernel_sizes=self.camal_kernel_sizes,
                n_filters=self.camal_filters,
                train_config=self.train_config,
                config=self.camal_config,
                seed=self.seed,
            )
        elapsed = time.perf_counter() - start
        eval_start = time.perf_counter()
        with obs.span("benchmark.eval", method=CAMAL_NAME):
            result = model.localize(self.test_windows.x)
        self._record_timings(
            CAMAL_NAME, elapsed, time.perf_counter() - eval_start
        )
        return self._evaluate(
            CAMAL_NAME,
            "CamAL",
            "weak",
            result.probabilities,
            result.status,
            count_weak_labels(len(windows)),
            elapsed,
        )

    def run_baseline(
        self, name: str, train_windows: WindowSet | None = None
    ) -> MethodResult:
        """Train and score one registry baseline."""
        spec = get_baseline_spec(name)
        windows = train_windows or self.train_windows
        model = spec.factory(np.random.default_rng(self.seed))
        trainers = {
            "seq2seq": train_seq2seq,
            "mil": train_mil,
            "classifier": train_classifier,
        }
        start = time.perf_counter()
        with obs.span("benchmark.train", method=name, n_windows=len(windows)):
            trainers[spec.trainer](model, windows, self.train_config)
        elapsed = time.perf_counter() - start
        eval_start = time.perf_counter()
        with obs.span("benchmark.eval", method=name):
            status = model.predict_status(self.test_windows.x)
            if spec.supervision == "strong":
                # Detection is derived: the window's max ON probability.
                probabilities = model.predict_status_proba(
                    self.test_windows.x
                ).max(axis=1)
                labels = count_strong_labels(len(windows), windows.window_length)
            else:
                probabilities = model.predict_proba(self.test_windows.x)
                labels = count_weak_labels(len(windows))
        self._record_timings(name, elapsed, time.perf_counter() - eval_start)
        return self._evaluate(
            name,
            spec.display_name,
            spec.supervision,
            probabilities,
            status,
            labels,
            elapsed,
        )

    def run_all(self, methods: list[str] | None = None) -> BenchmarkResult:
        """Run CamAL plus the requested baselines (default: all six)."""
        methods = methods if methods is not None else list_baselines()
        result = BenchmarkResult(
            dataset=self.dataset_name,
            appliance=self.train_windows.appliance,
            window=self.train_windows.window_length,
            n_train_windows=len(self.train_windows),
            n_test_windows=len(self.test_windows),
        )
        result.results.append(self.run_camal())
        for name in methods:
            result.results.append(self.run_baseline(name))
        return result
