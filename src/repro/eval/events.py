"""Event-level evaluation of localizations.

Per-timestep metrics punish small boundary errors on long activations
and reward marking half of every event. Event-level scoring — standard
in the NILM literature — asks the question users actually care about:
*did the system find each activation?* Two events match when they
overlap in time (optionally within a tolerance); matching is one-to-one
and greedy by overlap size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Event", "extract_events", "match_events", "event_metrics"]


@dataclass(frozen=True)
class Event:
    """A half-open activation interval ``[start, end)`` in samples."""

    start: int
    end: int

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError(f"empty event [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def overlap(self, other: "Event") -> int:
        return max(0, min(self.end, other.end) - max(self.start, other.start))


def extract_events(status: np.ndarray) -> list[Event]:
    """ON runs of a binary status series as a list of events."""
    status = np.asarray(status)
    if status.ndim != 1:
        raise ValueError(f"expected 1-D status, got shape {status.shape}")
    on = np.concatenate([[False], status > 0.5, [False]])
    starts = np.flatnonzero(on[1:] & ~on[:-1])
    ends = np.flatnonzero(~on[1:] & on[:-1])
    return [Event(int(s), int(e)) for s, e in zip(starts, ends)]


def match_events(
    true_events: list[Event],
    pred_events: list[Event],
    tolerance: int = 0,
) -> list[tuple[int, int]]:
    """Greedy one-to-one matching by overlap.

    ``tolerance`` widens each true event by that many samples on both
    sides before testing overlap, forgiving small boundary shifts.
    Returns index pairs ``(true_idx, pred_idx)``.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    candidates = []
    for i, true_event in enumerate(true_events):
        widened = Event(
            max(true_event.start - tolerance, 0), true_event.end + tolerance
        )
        for j, pred_event in enumerate(pred_events):
            overlap = widened.overlap(pred_event)
            if overlap > 0:
                candidates.append((overlap, i, j))
    candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
    matched_true: set[int] = set()
    matched_pred: set[int] = set()
    pairs = []
    for _, i, j in candidates:
        if i in matched_true or j in matched_pred:
            continue
        matched_true.add(i)
        matched_pred.add(j)
        pairs.append((i, j))
    return pairs


def event_metrics(
    true_status: np.ndarray,
    pred_status: np.ndarray,
    tolerance: int = 0,
) -> dict[str, float]:
    """Event precision/recall/F1 over stacked windows ``(N, T)`` or a
    single series ``(T,)``."""
    true_status = np.atleast_2d(np.asarray(true_status))
    pred_status = np.atleast_2d(np.asarray(pred_status))
    if true_status.shape != pred_status.shape:
        raise ValueError(
            f"shape mismatch: {true_status.shape} vs {pred_status.shape}"
        )
    n_true = n_pred = n_matched = 0
    for truth_row, pred_row in zip(true_status, pred_status):
        true_events = extract_events(truth_row)
        pred_events = extract_events(pred_row)
        n_true += len(true_events)
        n_pred += len(pred_events)
        n_matched += len(match_events(true_events, pred_events, tolerance))
    precision = n_matched / n_pred if n_pred else 0.0
    recall = n_matched / n_true if n_true else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {
        "event_precision": precision,
        "event_recall": recall,
        "event_f1": f1,
        "n_true_events": float(n_true),
        "n_pred_events": float(n_pred),
        "n_matched": float(n_matched),
    }
