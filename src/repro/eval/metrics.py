"""Classification metrics for detection and localization.

The paper's benchmark frame reports Accuracy, Balanced Accuracy,
Precision, Recall, and F1 Score (§III). Detection metrics operate on one
prediction per window; localization metrics on one per timestep
(flattened across windows). All ratios define 0/0 as 0, the standard
convention when a fold has no positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "METRIC_NAMES",
    "ConfusionCounts",
    "Metrics",
    "confusion_counts",
    "compute_metrics",
    "detection_metrics",
    "localization_metrics",
]

METRIC_NAMES: tuple[str, ...] = (
    "accuracy",
    "balanced_accuracy",
    "precision",
    "recall",
    "f1",
)


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionCounts:
    """Count TP/FP/TN/FN from binary arrays of any (matching) shape."""
    y_true = np.asarray(y_true).ravel() > 0.5
    y_pred = np.asarray(y_pred).ravel() > 0.5
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute metrics on empty arrays")
    return ConfusionCounts(
        tp=int(np.sum(y_pred & y_true)),
        fp=int(np.sum(y_pred & ~y_true)),
        tn=int(np.sum(~y_pred & ~y_true)),
        fn=int(np.sum(~y_pred & y_true)),
    )


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator > 0 else 0.0


@dataclass(frozen=True)
class Metrics:
    """The five scores of the paper's benchmark frame."""

    accuracy: float
    balanced_accuracy: float
    precision: float
    recall: float
    f1: float
    counts: ConfusionCounts = field(
        default_factory=lambda: ConfusionCounts(0, 0, 0, 0), compare=False
    )

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in METRIC_NAMES}

    def get(self, name: str) -> float:
        if name not in METRIC_NAMES:
            raise KeyError(
                f"unknown metric {name!r}; available: {', '.join(METRIC_NAMES)}"
            )
        return getattr(self, name)

    @classmethod
    def from_dict(cls, payload: dict) -> "Metrics":
        """Rebuild from :meth:`as_dict` output (confusion counts are not
        serialized and come back zeroed)."""
        return cls(**{name: float(payload[name]) for name in METRIC_NAMES})


def compute_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> Metrics:
    """All five metrics from binary arrays."""
    counts = confusion_counts(y_true, y_pred)
    precision = _ratio(counts.tp, counts.tp + counts.fp)
    recall = _ratio(counts.tp, counts.tp + counts.fn)
    specificity = _ratio(counts.tn, counts.tn + counts.fp)
    return Metrics(
        accuracy=_ratio(counts.tp + counts.tn, counts.total),
        balanced_accuracy=0.5 * (recall + specificity),
        precision=precision,
        recall=recall,
        f1=_ratio(2.0 * precision * recall, precision + recall),
        counts=counts,
    )


def detection_metrics(
    y_weak_true: np.ndarray, probabilities: np.ndarray, threshold: float = 0.5
) -> Metrics:
    """Window-level detection metrics from probabilities ``(N,)``."""
    probabilities = np.asarray(probabilities)
    if probabilities.ndim != 1:
        raise ValueError(
            f"expected (N,) probabilities, got shape {probabilities.shape}"
        )
    return compute_metrics(y_weak_true, probabilities > threshold)


def localization_metrics(
    y_strong_true: np.ndarray, status_pred: np.ndarray
) -> Metrics:
    """Per-timestep localization metrics from status stacks ``(N, T)``."""
    y_strong_true = np.asarray(y_strong_true)
    status_pred = np.asarray(status_pred)
    if y_strong_true.shape != status_pred.shape:
        raise ValueError(
            f"shape mismatch: truth {y_strong_true.shape} vs "
            f"prediction {status_pred.shape}"
        )
    if y_strong_true.ndim != 2:
        raise ValueError("localization metrics expect (N, T) stacks")
    return compute_metrics(y_strong_true, status_pred)
