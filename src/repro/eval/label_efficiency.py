"""Label-efficiency sweep — the harness behind Figure 3.

For each label budget, every method gets exactly that many labels:
a weakly supervised method labels one *window* per label, a strongly
supervised method labels one *timestep* per label (so its window count
is ``budget // window_length``). Each method trains on its affordable
subsample and is scored on a fixed held-out test set with localization
F1 — reproducing the paper's "accuracy vs number of labels" axes, the
2.2× weak-baseline gap, and the ~5200× label-cost crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..datasets import WindowSet
from ..models import TrainConfig, get_baseline_spec
from .benchmark import CAMAL_NAME, BenchmarkRunner

__all__ = [
    "EfficiencyPoint",
    "EfficiencyCurve",
    "LabelEfficiencyResult",
    "stratified_subsample",
    "LabelEfficiencySweep",
]


@dataclass(frozen=True)
class EfficiencyPoint:
    """One (budget, score) sample of a method's curve."""

    labels: int  # labels actually consumed
    windows: int  # training windows that budget affords
    f1: float  # localization F1 on the fixed test set
    detection_f1: float = 0.0


@dataclass
class EfficiencyCurve:
    """One method's label-efficiency curve."""

    method: str
    display_name: str
    supervision: str
    points: list[EfficiencyPoint] = field(default_factory=list)

    @property
    def best_f1(self) -> float:
        return max((p.f1 for p in self.points), default=0.0)

    def f1_at_or_below(self, budget: int) -> float:
        """Best F1 achievable within ``budget`` labels."""
        eligible = [p.f1 for p in self.points if p.labels <= budget]
        return max(eligible, default=0.0)

    def labels_to_reach(self, target_f1: float) -> int | None:
        """Smallest label budget whose F1 meets ``target_f1`` (None if never)."""
        reached = [p.labels for p in self.points if p.f1 >= target_f1]
        return min(reached, default=None)


@dataclass
class LabelEfficiencyResult:
    """All curves for one dataset × appliance task (Fig. 3)."""

    dataset: str
    appliance: str
    window_length: int
    curves: dict[str, EfficiencyCurve] = field(default_factory=dict)

    def get(self, method: str) -> EfficiencyCurve:
        try:
            return self.curves[method]
        except KeyError:
            raise KeyError(
                f"no curve for {method!r}; available: "
                f"{', '.join(self.curves)}"
            ) from None

    def crossover_ratio(self, strong_method: str, reference: str = CAMAL_NAME) -> float | None:
        """How many × more labels ``strong_method`` needs to match the
        reference's best F1. ``None`` when it never gets there."""
        ref = self.get(reference)
        target = ref.best_f1
        ref_labels = ref.labels_to_reach(target)
        strong_labels = self.get(strong_method).labels_to_reach(target)
        if ref_labels is None or strong_labels is None or ref_labels == 0:
            return None
        return strong_labels / ref_labels

    def weak_gap(self, weak_method: str = "mil", reference: str = CAMAL_NAME) -> float | None:
        """F1 ratio reference/weak at the weak methods' common best —
        the paper's "2.2× better than the other weakly supervised
        baseline"."""
        weak_best = self.get(weak_method).best_f1
        if weak_best == 0.0:
            return None
        return self.get(reference).best_f1 / weak_best

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "appliance": self.appliance,
            "window_length": self.window_length,
            "curves": {
                name: {
                    "display_name": curve.display_name,
                    "supervision": curve.supervision,
                    "points": [
                        {
                            "labels": p.labels,
                            "windows": p.windows,
                            "f1": p.f1,
                            "detection_f1": p.detection_f1,
                        }
                        for p in curve.points
                    ],
                }
                for name, curve in self.curves.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LabelEfficiencyResult":
        """Rebuild from :meth:`to_dict` output (JSON round trip)."""
        result = cls(
            dataset=payload["dataset"],
            appliance=payload["appliance"],
            window_length=int(payload["window_length"]),
        )
        for name, entry in payload["curves"].items():
            curve = EfficiencyCurve(
                method=name,
                display_name=entry["display_name"],
                supervision=entry["supervision"],
            )
            curve.points = [
                EfficiencyPoint(
                    labels=int(p["labels"]),
                    windows=int(p["windows"]),
                    f1=float(p["f1"]),
                    detection_f1=float(p.get("detection_f1", 0.0)),
                )
                for p in entry["points"]
            ]
            result.curves[name] = curve
        return result


def stratified_subsample(
    windows: WindowSet, n: int, rng: np.random.Generator
) -> WindowSet:
    """Pick ``n`` windows preserving the positive/negative balance.

    Guarantees at least one window of each class when both exist in the
    source — a detector can't train on a single class.
    """
    total = len(windows)
    if not 1 <= n <= total:
        raise ValueError(f"cannot subsample {n} of {total} windows")
    positives = np.flatnonzero(windows.y_weak > 0.5)
    negatives = np.flatnonzero(windows.y_weak <= 0.5)
    if len(positives) == 0 or len(negatives) == 0 or n == 1:
        idx = rng.permutation(total)[:n]
        return windows.subset(np.sort(idx))
    n_pos = int(round(n * len(positives) / total))
    n_pos = min(max(n_pos, 1), n - 1, len(positives))
    n_neg = min(n - n_pos, len(negatives))
    chosen = np.concatenate(
        [
            rng.choice(positives, size=n_pos, replace=False),
            rng.choice(negatives, size=n_neg, replace=False),
        ]
    )
    return windows.subset(np.sort(chosen))


class LabelEfficiencySweep:
    """Runs the Fig. 3 experiment.

    Parameters
    ----------
    train_windows, test_windows:
        The full task; each budget subsamples ``train_windows``.
    budgets:
        Label budgets to sweep. Defaults to decades from 10 to the
        strong-supervision cost of the full training set.
    methods:
        Baselines to include (default: all six).
    min_windows:
        Skip (method, budget) pairs affording fewer than this many
        training windows — below it training is degenerate.
    """

    def __init__(
        self,
        train_windows: WindowSet,
        test_windows: WindowSet,
        budgets: list[int] | None = None,
        methods: list[str] | None = None,
        train_config: TrainConfig | None = None,
        camal_kernel_sizes: tuple[int, ...] = (5, 7, 9, 15),
        camal_filters: tuple[int, int, int] = (8, 16, 16),
        min_windows: int = 4,
        seed: int = 0,
        dataset_name: str = "",
    ):
        self.train_windows = train_windows
        self.test_windows = test_windows
        t = train_windows.window_length
        max_strong = len(train_windows) * t
        if budgets is None:
            budgets = []
            budget = 10
            while budget < max_strong:
                budgets.append(budget)
                budget *= 10
            budgets.append(max_strong)
        self.budgets = sorted(set(int(b) for b in budgets))
        if any(b < 1 for b in self.budgets):
            raise ValueError("budgets must be positive")
        self.methods = methods if methods is not None else [
            "seq2seq_cnn", "seq2point", "dae", "unet", "bigru", "mil",
        ]
        self.runner = BenchmarkRunner(
            train_windows,
            test_windows,
            train_config=train_config,
            camal_kernel_sizes=camal_kernel_sizes,
            camal_filters=camal_filters,
            seed=seed,
            dataset_name=dataset_name,
        )
        self.min_windows = min_windows
        self.seed = seed
        self.dataset_name = dataset_name

    def _windows_for_budget(self, supervision: str, budget: int) -> int:
        if supervision == "weak":
            affordable = budget
        else:
            affordable = budget // self.train_windows.window_length
        return min(affordable, len(self.train_windows))

    def _labels_consumed(self, supervision: str, n_windows: int) -> int:
        if supervision == "weak":
            return n_windows
        return n_windows * self.train_windows.window_length

    def run(self, verbose: bool = False) -> LabelEfficiencyResult:
        """Sweep every method over every budget.

        Progress goes through :mod:`repro.obs.log` — one
        ``label_efficiency.point`` event per trained (method, budget)
        pair, written to stderr only when ``verbose`` is set.
        """
        result = LabelEfficiencyResult(
            dataset=self.dataset_name,
            appliance=self.train_windows.appliance,
            window_length=self.train_windows.window_length,
        )
        specs = [(CAMAL_NAME, "CamAL", "weak")]
        for name in self.methods:
            spec = get_baseline_spec(name)
            specs.append((name, spec.display_name, spec.supervision))
        with obs.span(
            "label_efficiency.run",
            methods=len(specs),
            budgets=len(self.budgets),
        ):
            for name, display, supervision in specs:
                curve = EfficiencyCurve(name, display, supervision)
                seen_window_counts: set[int] = set()
                for i, budget in enumerate(self.budgets):
                    n_windows = self._windows_for_budget(supervision, budget)
                    if n_windows < self.min_windows:
                        continue
                    if n_windows in seen_window_counts:
                        continue  # same effective training set; skip retrain
                    seen_window_counts.add(n_windows)
                    rng = np.random.default_rng(self.seed + 1000 + i)
                    subsample = stratified_subsample(
                        self.train_windows, n_windows, rng
                    )
                    if name == CAMAL_NAME:
                        method_result = self.runner.run_camal(subsample)
                    else:
                        method_result = self.runner.run_baseline(name, subsample)
                    point = EfficiencyPoint(
                        labels=self._labels_consumed(supervision, n_windows),
                        windows=n_windows,
                        f1=method_result.localization.f1,
                        detection_f1=method_result.detection.f1,
                    )
                    curve.points.append(point)
                    obs.log.event(
                        "label_efficiency.point",
                        _force=verbose,
                        method=display,
                        labels=point.labels,
                        windows=n_windows,
                        loc_f1=round(point.f1, 4),
                    )
                result.curves[name] = curve
        return result
