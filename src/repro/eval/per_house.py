"""Per-household result breakdown.

Aggregate metrics hide heterogeneity: a detector can ace four houses and
fail the fifth (different appliance models, different base loads). The
per-house breakdown groups a :class:`~repro.datasets.WindowSet`'s
evaluation by source household — the unit the train/test split is made
of — which is how regressions localized to one household get spotted.
"""

from __future__ import annotations

import numpy as np

from ..datasets import WindowSet
from .metrics import Metrics, detection_metrics, localization_metrics

__all__ = ["per_house_detection", "per_house_localization"]


def _house_groups(windows: WindowSet) -> dict[str, np.ndarray]:
    groups: dict[str, list[int]] = {}
    for i, house_id in enumerate(windows.house_ids):
        groups.setdefault(house_id, []).append(i)
    return {hid: np.asarray(idx) for hid, idx in groups.items()}


def per_house_detection(
    windows: WindowSet, probabilities: np.ndarray, threshold: float = 0.5
) -> dict[str, Metrics]:
    """Detection metrics grouped by household."""
    probabilities = np.asarray(probabilities)
    if probabilities.shape != (len(windows),):
        raise ValueError(
            f"expected ({len(windows)},) probabilities, "
            f"got {probabilities.shape}"
        )
    return {
        house_id: detection_metrics(
            windows.y_weak[idx], probabilities[idx], threshold
        )
        for house_id, idx in _house_groups(windows).items()
    }


def per_house_localization(
    windows: WindowSet, status: np.ndarray
) -> dict[str, Metrics]:
    """Localization metrics grouped by household."""
    status = np.asarray(status)
    if status.shape != windows.y_strong.shape:
        raise ValueError(
            f"expected {windows.y_strong.shape} status, got {status.shape}"
        )
    return {
        house_id: localization_metrics(
            windows.y_strong[idx], status[idx]
        )
        for house_id, idx in _house_groups(windows).items()
    }
