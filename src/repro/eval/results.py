"""Result formatting and persistence.

Plain-text tables (what the bench harnesses print) and JSON round-trips
(what the app's benchmark frame browses).
"""

from __future__ import annotations

import json
import os

from .benchmark import BenchmarkResult
from .label_efficiency import LabelEfficiencyResult
from .loho import LOHOResult
from .metrics import METRIC_NAMES

__all__ = [
    "format_table",
    "format_benchmark",
    "format_efficiency",
    "format_loho",
    "save_json",
    "load_json",
]


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0])
    widths = {}
    rendered = []
    for row in rows:
        cells = {}
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                cells[col] = f"{value:.3f}"
            else:
                cells[col] = str(value)
        rendered.append(cells)
    for col in columns:
        widths[col] = max(len(col), *(len(r[col]) for r in rendered))
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "  ".join("-" * widths[col] for col in columns)
    body = [
        "  ".join(r[col].ljust(widths[col]) for col in columns)
        for r in rendered
    ]
    return "\n".join([header, rule, *body])


def format_benchmark(result: BenchmarkResult, kind: str = "localization") -> str:
    """Benchmark table in the paper's metric order."""
    title = (
        f"[{result.dataset or 'dataset'}] {result.appliance} — {kind} "
        f"(train={result.n_train_windows} windows, "
        f"test={result.n_test_windows})"
    )
    columns = ["method", "supervision", "labels", *METRIC_NAMES]
    return title + "\n" + format_table(result.to_rows(kind), columns)


def format_efficiency(result: LabelEfficiencyResult) -> str:
    """Fig. 3 as text: one row per (method, budget) point."""
    rows = []
    for curve in result.curves.values():
        for point in curve.points:
            rows.append(
                {
                    "method": curve.display_name,
                    "supervision": curve.supervision,
                    "labels": point.labels,
                    "windows": point.windows,
                    "loc_f1": point.f1,
                    "det_f1": point.detection_f1,
                }
            )
    title = (
        f"[{result.dataset or 'dataset'}] {result.appliance} — "
        f"localization F1 vs labels (window={result.window_length})"
    )
    return title + "\n" + format_table(
        rows, ["method", "supervision", "labels", "windows", "loc_f1", "det_f1"]
    )


def format_loho(result: LOHOResult) -> str:
    """Leave-one-house-out folds plus the mean ± std summary row."""
    rows = result.to_rows()
    det_mean, det_std = result.summary("detection", "f1")
    loc_mean, loc_std = result.summary("localization", "f1")
    table = format_table(rows)
    summary = (
        f"mean ± std — detection F1 {det_mean:.3f} ± {det_std:.3f}, "
        f"localization F1 {loc_mean:.3f} ± {loc_std:.3f}"
    )
    return (
        f"Leave-one-house-out — {result.appliance} "
        f"({len(result.folds)} folds)\n{table}\n{summary}"
    )


def save_json(
    result: BenchmarkResult | LabelEfficiencyResult, path: str | os.PathLike
) -> None:
    """Persist a result's dict form as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)


def load_json(path: str | os.PathLike) -> dict:
    """Load a result dict saved by :func:`save_json`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
