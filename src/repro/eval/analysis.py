"""Statistical analysis utilities: threshold sweeps, calibration,
bootstrap confidence intervals.

The demo fixes the detection threshold at 0.5 (§II.B step 2); these
tools quantify how sensitive the reported numbers are to that choice,
how trustworthy the ensemble probabilities are as probabilities, and how
wide the sampling error on a metric is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import Metrics, compute_metrics

__all__ = [
    "ThresholdPoint",
    "threshold_sweep",
    "best_threshold",
    "expected_calibration_error",
    "bootstrap_metric",
]


@dataclass(frozen=True)
class ThresholdPoint:
    """Metrics at one decision threshold."""

    threshold: float
    metrics: Metrics


def threshold_sweep(
    y_true: np.ndarray,
    probabilities: np.ndarray,
    thresholds: np.ndarray | None = None,
) -> list[ThresholdPoint]:
    """Metrics across decision thresholds (a PR/F1 curve in table form)."""
    y_true = np.asarray(y_true)
    probabilities = np.asarray(probabilities)
    if y_true.shape != probabilities.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {probabilities.shape}"
        )
    if thresholds is None:
        thresholds = np.linspace(0.05, 0.95, 19)
    points = []
    for threshold in np.asarray(thresholds, dtype=np.float64):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold {threshold} outside (0, 1)")
        points.append(
            ThresholdPoint(
                threshold=float(threshold),
                metrics=compute_metrics(y_true, probabilities > threshold),
            )
        )
    return points


def best_threshold(
    y_true: np.ndarray,
    probabilities: np.ndarray,
    metric: str = "f1",
    thresholds: np.ndarray | None = None,
) -> ThresholdPoint:
    """The sweep point maximizing ``metric`` (ties break toward 0.5)."""
    points = threshold_sweep(y_true, probabilities, thresholds)
    return max(
        points,
        key=lambda p: (p.metrics.get(metric), -abs(p.threshold - 0.5)),
    )


def expected_calibration_error(
    y_true: np.ndarray,
    probabilities: np.ndarray,
    n_bins: int = 10,
) -> float:
    """ECE: mean |confidence − empirical accuracy| over probability bins.

    0 means the ensemble's probabilities are perfectly calibrated; a
    detector that says "0.9" should be right 90% of the time.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    y_true = np.asarray(y_true).ravel() > 0.5
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    if y_true.shape != probabilities.shape:
        raise ValueError("shape mismatch")
    if probabilities.size == 0:
        raise ValueError("empty inputs")
    if probabilities.min() < 0 or probabilities.max() > 1:
        raise ValueError("probabilities must lie in [0, 1]")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins = np.clip(np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1)
    ece = 0.0
    for b in range(n_bins):
        mask = bins == b
        if not mask.any():
            continue
        confidence = probabilities[mask].mean()
        accuracy = y_true[mask].mean()
        ece += mask.mean() * abs(confidence - accuracy)
    return float(ece)


def bootstrap_metric(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    metric: str = "f1",
    n_resamples: int = 500,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> tuple[float, float, float]:
    """Percentile bootstrap CI for a metric over sample units.

    Resamples rows (windows) with replacement — the unit of independence
    in a window-level evaluation. Returns ``(point, low, high)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    rng = rng or np.random.default_rng(0)
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    n = y_true.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples to bootstrap")
    point = compute_metrics(y_true, y_pred).get(metric)
    values = np.empty(n_resamples)
    for i in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        values[i] = compute_metrics(y_true[idx], y_pred[idx]).get(metric)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(values, [alpha, 1.0 - alpha])
    return float(point), float(low), float(high)
