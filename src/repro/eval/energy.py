"""Per-appliance energy estimation from localizations.

The paper's conclusion motivates DeviceScope with helping "customers
save significantly by identifying over-consuming devices". A localized
status series turns into an energy estimate in two ways:

* **status × typical power** — when only the localization is available,
  multiply ON time by the appliance's typical draw;
* **status × aggregate** — attribute the aggregate reading to the
  appliance during its predicted ON spans (an upper bound that a
  downstream disaggregator would refine).

Errors are reported against the submeter ground truth in kWh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import get_appliance_spec

__all__ = ["EnergyEstimate", "energy_kwh", "estimate_energy"]


def energy_kwh(power_w: np.ndarray, step_s: float) -> float:
    """Integrate a watt series into kWh (NaN counts as zero draw)."""
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    power_w = np.nan_to_num(np.asarray(power_w, dtype=np.float64), nan=0.0)
    return float(power_w.sum() * step_s / 3600.0 / 1000.0)


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting for one appliance over one span."""

    appliance: str
    estimated_kwh: float
    aggregate_share_kwh: float
    true_kwh: float | None

    @property
    def absolute_error_kwh(self) -> float | None:
        if self.true_kwh is None:
            return None
        return abs(self.estimated_kwh - self.true_kwh)

    @property
    def relative_error(self) -> float | None:
        if self.true_kwh is None or self.true_kwh == 0.0:
            return None
        return abs(self.estimated_kwh - self.true_kwh) / self.true_kwh


def estimate_energy(
    appliance: str,
    status: np.ndarray,
    aggregate_w: np.ndarray,
    step_s: float = 60.0,
    submeter_w: np.ndarray | None = None,
    typical_power_w: float | None = None,
) -> EnergyEstimate:
    """Estimate an appliance's energy from its localized status.

    Parameters
    ----------
    status:
        Binary ON/OFF series from a localizer.
    aggregate_w:
        The aggregate watt series over the same span.
    typical_power_w:
        Override for the appliance's typical draw; defaults to the
        midpoint of the catalogue spec's power range.
    submeter_w:
        Optional ground truth for error reporting.
    """
    status = np.asarray(status, dtype=np.float64)
    aggregate_w = np.asarray(aggregate_w, dtype=np.float64)
    if status.shape != aggregate_w.shape:
        raise ValueError(
            f"shape mismatch: status {status.shape} vs aggregate "
            f"{aggregate_w.shape}"
        )
    if typical_power_w is None:
        spec = get_appliance_spec(appliance)
        low, high = spec.power_w
        # Mean draw over a cycle is below peak for cyclic/multi-phase
        # appliances; approximate with the profile's duty-weighted level.
        if spec.profile == "constant":
            typical_power_w = (low + high) / 2.0
        elif spec.profile == "cyclic":
            typical_power_w = 0.56 * (low + high) / 2.0  # ~50% duty + idle
        else:
            fractions = [
                frac * power for frac, power, _ in spec.phases
            ]
            typical_power_w = (low + high) / 2.0 * sum(fractions)
    if typical_power_w <= 0:
        raise ValueError("typical_power_w must be positive")
    estimated = energy_kwh(status * typical_power_w, step_s)
    share = energy_kwh(status * np.nan_to_num(aggregate_w, nan=0.0), step_s)
    true = energy_kwh(submeter_w, step_s) if submeter_w is not None else None
    return EnergyEstimate(
        appliance=appliance,
        estimated_kwh=estimated,
        aggregate_share_kwh=share,
        true_kwh=true,
    )
