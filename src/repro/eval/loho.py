"""Leave-one-house-out (LOHO) cross validation.

The standard NILM evaluation protocol: each monitored house takes a turn
as the unseen test household while the others train. This removes the
single-split luck the fixed benchmark runner is exposed to, and yields
per-fold spread (mean ± std) for every metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import CamAL, CamALConfig
from ..datasets import SmartMeterDataset, make_windows
from ..models import TrainConfig
from .metrics import Metrics, detection_metrics, localization_metrics

__all__ = ["LOHOFold", "LOHOResult", "leave_one_house_out"]


@dataclass
class LOHOFold:
    """One fold: scores with ``house_id`` held out."""

    house_id: str
    detection: Metrics
    localization: Metrics
    n_train_windows: int
    n_test_windows: int


@dataclass
class LOHOResult:
    """All folds of a LOHO run."""

    appliance: str
    folds: list[LOHOFold] = field(default_factory=list)

    def summary(self, kind: str = "localization", metric: str = "f1") -> tuple[float, float]:
        """``(mean, std)`` of a metric across folds."""
        if not self.folds:
            raise ValueError("no folds to summarize")
        values = [
            getattr(fold, kind).get(metric) for fold in self.folds
        ]
        return float(np.mean(values)), float(np.std(values))

    def to_rows(self) -> list[dict]:
        return [
            {
                "held_out": fold.house_id,
                "det_f1": fold.detection.f1,
                "det_bacc": fold.detection.balanced_accuracy,
                "loc_f1": fold.localization.f1,
                "loc_bacc": fold.localization.balanced_accuracy,
                "train_windows": fold.n_train_windows,
                "test_windows": fold.n_test_windows,
            }
            for fold in self.folds
        ]


def leave_one_house_out(
    dataset: SmartMeterDataset,
    appliance: str,
    window: str | int = "6h",
    stride: int | None = None,
    kernel_sizes: tuple[int, ...] = (5, 9),
    n_filters: tuple[int, int, int] = (8, 16, 16),
    train_config: TrainConfig | None = None,
    camal_config: CamALConfig | None = None,
    seed: int = 0,
    skip_empty_test: bool = True,
) -> LOHOResult:
    """Run CamAL leave-one-house-out over ``dataset``.

    Folds whose held-out house yields no valid windows are skipped;
    folds where the held-out house does not own the appliance are kept
    (they measure false-positive behavior) unless the house produced no
    windows at all.
    """
    if len(dataset.houses) < 2:
        raise ValueError("LOHO needs at least 2 houses")
    result = LOHOResult(appliance=appliance)
    for held_out in dataset.houses:
        train_houses = [h for h in dataset.houses if h is not held_out]
        train_ds = SmartMeterDataset(
            name=f"{dataset.name}/loho",
            houses=train_houses,
            step_s=dataset.step_s,
            label_source=dataset.label_source,
        )
        test_ds = SmartMeterDataset(
            name=f"{dataset.name}/held",
            houses=[held_out],
            step_s=dataset.step_s,
            label_source=dataset.label_source,
        )
        train = make_windows(train_ds, appliance, window, stride=stride)
        if len(train) == 0 or len(set(train.y_weak.tolist())) < 2:
            continue  # cannot train a detector on one class
        test = make_windows(test_ds, appliance, window, scaler=train.scaler)
        if len(test) == 0 and skip_empty_test:
            continue
        model = CamAL.train(
            train,
            kernel_sizes=kernel_sizes,
            n_filters=n_filters,
            train_config=train_config,
            config=camal_config,
            seed=seed,
        )
        localization = model.localize(test.x)
        result.folds.append(
            LOHOFold(
                house_id=held_out.house_id,
                detection=detection_metrics(
                    test.y_weak, localization.probabilities
                ),
                localization=localization_metrics(
                    test.y_strong, localization.status
                ),
                n_train_windows=len(train),
                n_test_windows=len(test),
            )
        )
    if not result.folds:
        raise ValueError(
            "every LOHO fold was degenerate (no valid windows or "
            "single-class training labels)"
        )
    return result
