"""Typical-usage profiling from localized activations.

The paper's conclusion: DeviceScope "enables electricity suppliers to
easily identify which appliances the customer owns and their typical
usage". A localized status series (or a submeter) turns into a usage
profile: how often the appliance runs, for how long, at what hours, and
how much energy it draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .energy import energy_kwh
from .events import extract_events

__all__ = ["UsageProfile", "merge_close_events", "usage_profile"]


@dataclass(frozen=True)
class UsageProfile:
    """Summary statistics of one appliance's usage over a recording."""

    appliance: str
    events_per_day: float
    mean_duration_min: float
    mean_power_w: float
    total_energy_kwh: float
    peak_hour: int | None  # clock hour with the most ON time, None if unused
    on_fraction: float

    def describe(self) -> str:
        """One-line human summary for the app."""
        if self.events_per_day == 0:
            return f"{self.appliance}: no activations found"
        peak = f", peak use around {self.peak_hour}:00" if self.peak_hour is not None else ""
        return (
            f"{self.appliance}: ~{self.events_per_day:.1f} uses/day, "
            f"~{self.mean_duration_min:.0f} min each at "
            f"~{self.mean_power_w:.0f} W "
            f"({self.total_energy_kwh:.1f} kWh total{peak})"
        )


def merge_close_events(events, merge_gap: int):
    """Fuse events separated by fewer than ``merge_gap`` OFF samples.

    Localized statuses fragment long appliance cycles (a washing
    machine's low-power drum phases dip below the attention threshold);
    counting each fragment as a "use" wildly overstates the usage rate.
    """
    if merge_gap < 0:
        raise ValueError("merge_gap must be >= 0")
    if not events or merge_gap == 0:
        return list(events)
    from .events import Event

    merged = [events[0]]
    for event in events[1:]:
        if event.start - merged[-1].end < merge_gap:
            merged[-1] = Event(merged[-1].start, event.end)
        else:
            merged.append(event)
    return merged


def usage_profile(
    appliance: str,
    status: np.ndarray,
    power_w: np.ndarray | None = None,
    step_s: float = 60.0,
    merge_gap: int = 0,
) -> UsageProfile:
    """Profile usage from a binary status series.

    Parameters
    ----------
    status:
        Binary ON/OFF series (predicted or ground truth), 1-D.
    power_w:
        Optional watt series aligned with ``status``; mean power and
        energy are computed over the ON samples. Without it both are 0.
    step_s:
        Sampling period.
    merge_gap:
        Fuse events separated by fewer than this many OFF samples before
        counting uses/durations (see :func:`merge_close_events`).
    """
    status = np.asarray(status, dtype=np.float64)
    if status.ndim != 1:
        raise ValueError(f"expected 1-D status, got shape {status.shape}")
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    if power_w is not None:
        power_w = np.asarray(power_w, dtype=np.float64)
        if power_w.shape != status.shape:
            raise ValueError(
                f"power shape {power_w.shape} does not match status "
                f"{status.shape}"
            )
    events = merge_close_events(extract_events(status), merge_gap)
    n_days = len(status) * step_s / 86400.0
    on = status > 0.5
    if events:
        durations = np.array([e.duration for e in events], dtype=np.float64)
        mean_duration_min = float(durations.mean() * step_s / 60.0)
    else:
        mean_duration_min = 0.0
    if power_w is not None and on.any():
        on_power = np.nan_to_num(power_w, nan=0.0)[on]
        mean_power_w = float(on_power.mean())
        total_energy = energy_kwh(np.nan_to_num(power_w, nan=0.0) * status, step_s)
    else:
        mean_power_w = 0.0
        total_energy = 0.0
    peak_hour: int | None = None
    if on.any():
        steps_per_hour = 3600.0 / step_s
        hours = ((np.arange(len(status)) / steps_per_hour) % 24).astype(int)
        counts = np.bincount(hours[on], minlength=24)
        peak_hour = int(np.argmax(counts))
    return UsageProfile(
        appliance=appliance,
        events_per_day=len(events) / max(n_days, 1e-9),
        mean_duration_min=mean_duration_min,
        mean_power_w=mean_power_w,
        total_energy_kwh=total_energy,
        peak_hour=peak_hour,
        on_fraction=float(on.mean()),
    )
