"""Alert state machine: ok → warn → alert with hysteresis and cooldown.

Raw drift/canary verdicts are noisy — one odd batch of windows can spike
PSI past a threshold and the next batch can clear it. Paging (or
auto-rolling-back a model) on a single spike is how monitoring earns
mute buttons. :class:`AlertStateMachine` debounces:

* **Escalation hysteresis** — the state only rises after
  ``escalate_after`` *consecutive* observations at or above the
  candidate severity. A lone alert-grade observation is remembered but
  changes nothing.
* **Clear hysteresis + cooldown** — the state only falls after
  ``clear_after`` consecutive observations strictly below the current
  severity *and* at least ``cooldown_s`` seconds since the last
  escalation. A flapping detector therefore parks at its worst recent
  level instead of oscillating.
* De-escalation is *gradual*: the state drops to the worst severity
  seen in the clearing streak (alert → warn when the streak was warns,
  alert → ok only when it was all-ok).

The clock is injectable so tests (and deterministic replays) control
time. Transitions are recorded (bounded) and counted through
``repro.obs`` as ``quality.alert_transitions_total``.
"""

from __future__ import annotations

import time
from collections import deque

from .. import obs
from .drift import LEVELS, severity

__all__ = ["AlertStateMachine"]


class AlertStateMachine:
    """Debounced severity state for one monitored appliance."""

    def __init__(
        self,
        escalate_after: int = 2,
        clear_after: int = 2,
        cooldown_s: float = 60.0,
        clock=time.monotonic,
        name: str = "",
    ):
        if escalate_after < 1 or clear_after < 1:
            raise ValueError("escalate_after/clear_after must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.escalate_after = int(escalate_after)
        self.clear_after = int(clear_after)
        self.cooldown_s = float(cooldown_s)
        self.clock = clock
        self.name = name
        self._state = "ok"
        self._state_since = float(clock())
        self._escalated_at = float("-inf")
        # Streaks relative to the *current* state.
        self._above: list[str] = []  # consecutive observations > state
        self._below: list[str] = []  # consecutive observations < state
        self.transitions: deque[dict] = deque(maxlen=256)
        self.observed = 0

    @property
    def state(self) -> str:
        return self._state

    def observe(self, level: str) -> str:
        """Feed one verdict (``ok``/``warn``/``alert``); returns the
        (possibly updated) debounced state."""
        if level not in LEVELS:
            raise ValueError(f"unknown severity {level!r}; expected {LEVELS}")
        self.observed += 1
        now = float(self.clock())
        current = severity(self._state)
        observed = severity(level)
        if observed > current:
            self._above.append(level)
            self._below = []
            if len(self._above) >= self.escalate_after:
                # Escalate to the *mildest* severity of the streak: every
                # observation in it supports at least that level.
                target = LEVELS[min(severity(l) for l in self._above)]
                self._transition(target, now, escalation=True)
        elif observed < current:
            self._below.append(level)
            self._above = []
            cooled = now - self._escalated_at >= self.cooldown_s
            if len(self._below) >= self.clear_after and cooled:
                # Drop to the worst severity of the clearing streak.
                target = LEVELS[max(severity(l) for l in self._below)]
                self._transition(target, now, escalation=False)
        else:
            self._above = []
            self._below = []
        return self._state

    def _transition(self, target: str, now: float, escalation: bool) -> None:
        previous = self._state
        self._state = target
        self._state_since = now
        self._above = []
        self._below = []
        if escalation:
            self._escalated_at = now
        self.transitions.append(
            {"t": now, "from": previous, "to": target}
        )
        if obs.enabled():
            obs.registry.counter(
                "quality.alert_transitions_total",
                help="alert state machine transitions",
            ).inc(name=self.name or "-", to=target)

    def snapshot(self) -> dict:
        """Plain-dict state for reports and ``DeviceScope.health()``."""
        return {
            "state": self._state,
            "since": self._state_since,
            "observed": self.observed,
            "transitions": len(self.transitions),
            "last_transition": (
                dict(self.transitions[-1]) if self.transitions else None
            ),
        }

    def reset(self) -> None:
        self._state = "ok"
        self._state_since = float(self.clock())
        self._escalated_at = float("-inf")
        self._above = []
        self._below = []
        self.transitions.clear()
        self.observed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AlertStateMachine(name={self.name!r}, state={self._state!r}, "
            f"observed={self.observed})"
        )
