"""Drift detection: PSI and KS over profile distributions.

Compares a live :class:`~repro.quality.profiles.ApplianceProfile`
against a frozen reference profile, feature by feature:

* **PSI** (population stability index) over the shared fixed buckets —
  the standard scorecard-monitoring statistic. Conventional reading:
  below 0.1 stable, 0.1–0.25 moderate shift (warn), above 0.25 major
  shift (alert). Bucket counts are Jeffreys-smoothed so sparse buckets
  do not blow the log up on small samples.
* **Two-sample KS** on the binned CDFs with the asymptotic
  Kolmogorov p-value. KS is sensitive on large samples even for tiny
  effects, so significance alone only *escalates* a PSI warn to alert —
  it never fires on its own.

Scalar rates (detection rate, NaN rate, clip rate, degraded rate) are
compared as two-bucket Bernoulli distributions through the same PSI
machinery, so one threshold vocabulary covers everything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .profiles import ApplianceProfile

__all__ = [
    "psi",
    "ks_statistic",
    "ks_pvalue",
    "severity",
    "FeatureDrift",
    "DriftReport",
    "DriftDetector",
]

#: Severity vocabulary shared by drift, canary, and alert layers.
LEVELS = ("ok", "warn", "alert")
_SEVERITY = {level: rank for rank, level in enumerate(LEVELS)}


def severity(level: str) -> int:
    """Rank of a severity level (``ok`` < ``warn`` < ``alert``)."""
    return _SEVERITY[level]


def psi(expected, actual, alpha: float = 0.5) -> float:
    """Population stability index between two aligned count vectors.

    ``expected``/``actual`` are per-bucket counts over the same edges.
    Returns 0.0 when either side is empty — no data is no evidence of
    drift. Jeffreys pseudo-count smoothing (``alpha`` added to every
    bucket *count*) keeps sparse buckets from dominating: with the
    classic tiny-epsilon-on-proportions trick, one window landing in a
    bucket the other side left empty contributes ~``ln(1/eps)`` and a
    handful of singletons can push a small clean sample past the alert
    threshold on binning noise alone.
    """
    expected = np.asarray(expected, dtype=np.float64).ravel()
    actual = np.asarray(actual, dtype=np.float64).ravel()
    if expected.shape != actual.shape:
        raise ValueError("PSI needs aligned bucket vectors")
    if expected.sum() <= 0 or actual.sum() <= 0:
        return 0.0
    p = (expected + alpha) / (expected.sum() + alpha * expected.size)
    q = (actual + alpha) / (actual.sum() + alpha * actual.size)
    return float(np.sum((q - p) * np.log(q / p)))


def ks_statistic(expected, actual) -> float:
    """Two-sample KS statistic over binned counts (max CDF gap).

    Binned data can only under-estimate the true statistic, which makes
    the detector conservative — fine for monitoring.
    """
    expected = np.asarray(expected, dtype=np.float64).ravel()
    actual = np.asarray(actual, dtype=np.float64).ravel()
    if expected.shape != actual.shape:
        raise ValueError("KS needs aligned bucket vectors")
    if expected.sum() <= 0 or actual.sum() <= 0:
        return 0.0
    cdf_e = np.cumsum(expected) / expected.sum()
    cdf_a = np.cumsum(actual) / actual.sum()
    return float(np.max(np.abs(cdf_e - cdf_a)))


def ks_pvalue(stat: float, n_expected: float, n_actual: float) -> float:
    """Asymptotic two-sample Kolmogorov p-value (Smirnov's formula with
    the small-sample correction; 1.0 when either sample is empty)."""
    if n_expected <= 0 or n_actual <= 0 or stat <= 0:
        return 1.0
    en = math.sqrt(n_expected * n_actual / (n_expected + n_actual))
    lam = (en + 0.12 + 0.11 / en) * stat
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-10:
            break
    return float(min(max(total, 0.0), 1.0))


@dataclass(frozen=True)
class FeatureDrift:
    """One feature's drift scores and verdict."""

    feature: str
    psi: float
    ks: float
    ks_p: float
    level: str  # ok | warn | alert
    reference_mean: float = float("nan")
    live_mean: float = float("nan")

    def to_dict(self) -> dict:
        return {
            "feature": self.feature,
            "psi": self.psi,
            "ks": self.ks,
            "ks_p": self.ks_p,
            "level": self.level,
            "reference_mean": self.reference_mean,
            "live_mean": self.live_mean,
        }


@dataclass
class DriftReport:
    """Per-appliance drift verdict across all tracked features."""

    appliance: str
    level: str  # ok | warn | alert
    features: list[FeatureDrift] = field(default_factory=list)
    n_reference: int = 0
    n_live: int = 0
    insufficient: bool = False  # too few live windows to judge

    def worst(self) -> FeatureDrift | None:
        if not self.features:
            return None
        return max(self.features, key=lambda f: (severity(f.level), f.psi))

    def to_dict(self) -> dict:
        return {
            "appliance": self.appliance,
            "level": self.level,
            "n_reference": self.n_reference,
            "n_live": self.n_live,
            "insufficient": self.insufficient,
            "features": [f.to_dict() for f in self.features],
        }


class DriftDetector:
    """PSI + KS comparison of live vs reference profiles.

    Parameters mirror the conventional PSI reading; ``ks_alpha`` is the
    significance that *escalates* a PSI warn to alert. ``min_windows``
    guards against judging a live window too small to bin meaningfully
    — below it the report is ``ok`` with ``insufficient=True``.
    """

    def __init__(
        self,
        psi_warn: float = 0.1,
        psi_alert: float = 0.25,
        ks_alpha: float = 0.01,
        min_windows: int = 16,
    ):
        if not 0.0 < psi_warn < psi_alert:
            raise ValueError("need 0 < psi_warn < psi_alert")
        if not 0.0 < ks_alpha < 1.0:
            raise ValueError("ks_alpha must be in (0, 1)")
        self.psi_warn = float(psi_warn)
        self.psi_alert = float(psi_alert)
        self.ks_alpha = float(ks_alpha)
        self.min_windows = int(min_windows)

    def _feature_level(self, psi_score: float, ks_p: float) -> str:
        if psi_score >= self.psi_alert:
            return "alert"
        if psi_score >= self.psi_warn:
            return "alert" if ks_p < self.ks_alpha else "warn"
        return "ok"

    def _distribution_features(
        self, reference: ApplianceProfile, live: ApplianceProfile
    ):
        for name in ("probability", "on_fraction", "power_mean"):
            ref_tracker = getattr(reference, name)
            live_tracker = getattr(live, name)
            yield name, ref_tracker.counts, live_tracker.counts, \
                ref_tracker.mean, live_tracker.mean

    def _rate_features(
        self, reference: ApplianceProfile, live: ApplianceProfile
    ):
        for name in ("detection_rate", "nan_rate", "clip_rate",
                     "degraded_rate"):
            ref_rate = getattr(reference, name)
            live_rate = getattr(live, name)
            ref_counts = _bernoulli_counts(ref_rate, reference.windows)
            live_counts = _bernoulli_counts(live_rate, live.windows)
            yield name, ref_counts, live_counts, ref_rate, live_rate

    def compare(
        self, reference: ApplianceProfile, live: ApplianceProfile
    ) -> DriftReport:
        """Score every feature and roll up the worst level."""
        report = DriftReport(
            appliance=live.appliance or reference.appliance,
            level="ok",
            n_reference=reference.windows,
            n_live=live.windows,
        )
        if live.windows < self.min_windows:
            report.insufficient = True
            return report
        features = list(self._distribution_features(reference, live))
        features.extend(self._rate_features(reference, live))
        worst = 0
        for name, ref_counts, live_counts, ref_mean, live_mean in features:
            psi_score = psi(ref_counts, live_counts)
            ks_score = ks_statistic(ref_counts, live_counts)
            p = ks_pvalue(
                ks_score, float(np.sum(ref_counts)), float(np.sum(live_counts))
            )
            level = self._feature_level(psi_score, p)
            worst = max(worst, severity(level))
            report.features.append(
                FeatureDrift(
                    feature=name,
                    psi=psi_score,
                    ks=ks_score,
                    ks_p=p,
                    level=level,
                    reference_mean=float(ref_mean),
                    live_mean=float(live_mean),
                )
            )
        report.level = LEVELS[worst]
        return report


def _bernoulli_counts(rate: float, n: int) -> np.ndarray:
    """A scalar rate as a two-bucket count vector (hit, miss)."""
    if n <= 0 or not math.isfinite(rate):
        return np.zeros(2)
    hits = rate * n
    return np.asarray([hits, n - hits], dtype=np.float64)
