"""The quality monitor: live tracking + drift + canaries + alerts.

:class:`QualityMonitor` is the hub the serving layers talk to:

* **Live tracking** — every attributed ``CamAL.localize_watts`` call
  (Playground predictions, sliding-window pipeline) feeds per-window
  observations into a bounded ring per appliance; the most recent
  ``live_window`` windows form the *live* distribution.
* **Reference profiles** — frozen :class:`ApplianceProfile` baselines
  built from the simulator's known-answer scenarios
  (:meth:`build_reference`) or loaded from JSON.
* **Drift** — :meth:`evaluate` compares live vs reference through the
  :class:`~repro.quality.drift.DriftDetector` (PSI + KS), runs the
  registered canary probes, and feeds the combined severity into one
  :class:`~repro.quality.alerts.AlertStateMachine` per appliance.
* **Health** — :meth:`status` collapses everything to per-appliance
  states plus an overall worst-of verdict, which
  ``DeviceScope.health()`` folds into its top-level ``status`` and
  ``devicescope quality`` renders.

A monitor becomes *active* via :func:`repro.quality.install`; the
``CamAL`` hook is a no-op (one None check) when nothing is installed,
so the fast path stays fast by default.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from .. import obs
from .alerts import AlertStateMachine
from .canary import CanaryProbe, CanaryResult
from .drift import LEVELS, DriftDetector, DriftReport, severity
from .profiles import ApplianceProfile, build_reference, observations_from_result

__all__ = ["QualityMonitor", "format_report"]


class QualityMonitor:
    """Per-appliance model-quality monitoring state.

    Parameters
    ----------
    live_window:
        How many recent windows form the live distribution (ring
        buffer, bounded like every other telemetry store in the repo).
    detector:
        Drift detector (default thresholds when omitted).
    escalate_after / clear_after / cooldown_s:
        Alert state machine debouncing, applied per appliance.
    clock:
        Injectable clock shared by the alert machines.
    """

    def __init__(
        self,
        live_window: int = 256,
        detector: DriftDetector | None = None,
        escalate_after: int = 2,
        clear_after: int = 2,
        cooldown_s: float = 60.0,
        clock=time.monotonic,
    ):
        if live_window < 1:
            raise ValueError("live_window must be >= 1")
        self.live_window = int(live_window)
        self.detector = detector or DriftDetector()
        self.clock = clock
        self._alert_kwargs = dict(
            escalate_after=escalate_after,
            clear_after=clear_after,
            cooldown_s=cooldown_s,
        )
        self._lock = threading.Lock()
        self._references: dict[str, ApplianceProfile] = {}
        self._canaries: dict[str, CanaryProbe] = {}
        self._live: dict[str, deque] = {}
        self._alerts: dict[str, AlertStateMachine] = {}
        self._drift_reports: dict[str, DriftReport] = {}
        self._canary_results: dict[str, CanaryResult] = {}

    # -- configuration -----------------------------------------------------

    def set_reference(self, appliance: str, profile: ApplianceProfile) -> None:
        with self._lock:
            self._references[appliance] = profile

    def reference(self, appliance: str) -> ApplianceProfile | None:
        with self._lock:
            return self._references.get(appliance)

    def build_reference(
        self, appliance: str, model, watts
    ) -> ApplianceProfile:
        """Freeze + register a reference profile from clean scenario
        windows (see :func:`repro.quality.profiles.build_reference`)."""
        profile = build_reference(model, appliance, watts)
        self.set_reference(appliance, profile)
        return profile

    def add_canary(self, appliance: str, probe: CanaryProbe) -> None:
        with self._lock:
            self._canaries[appliance] = probe

    def _alert(self, appliance: str) -> AlertStateMachine:
        machine = self._alerts.get(appliance)
        if machine is None:
            machine = AlertStateMachine(
                clock=self.clock, name=appliance, **self._alert_kwargs
            )
            self._alerts[appliance] = machine
        return machine

    # -- live ingestion ----------------------------------------------------

    def observe(self, appliance: str, watts, result) -> None:
        """Ingest one attributed localization batch (the ``CamAL`` hook)."""
        observations = observations_from_result(watts, result)
        with self._lock:
            ring = self._live.get(appliance)
            if ring is None:
                ring = self._live[appliance] = deque(maxlen=self.live_window)
            ring.extend(observations)
        if obs.enabled():
            obs.registry.counter(
                "quality.windows_observed_total",
                help="localized windows ingested by the quality monitor",
            ).inc(len(observations), appliance=appliance)

    def live_profile(self, appliance: str) -> ApplianceProfile:
        """The live distribution: recent observations binned on demand."""
        with self._lock:
            observations = list(self._live.get(appliance, ()))
        return ApplianceProfile.from_observations(appliance, observations)

    def reset_live(self, appliance: str | None = None) -> None:
        with self._lock:
            if appliance is None:
                self._live.clear()
            else:
                self._live.pop(appliance, None)

    # -- evaluation --------------------------------------------------------

    def run_canaries(self, models: dict) -> dict[str, CanaryResult]:
        """Re-score every registered probe whose appliance has a model."""
        with self._lock:
            probes = dict(self._canaries)
        results: dict[str, CanaryResult] = {}
        for appliance, probe in probes.items():
            model = models.get(appliance)
            if model is None:
                continue
            results[appliance] = probe.run(model)
        with self._lock:
            self._canary_results.update(results)
        if obs.enabled():
            for appliance, result in results.items():
                obs.registry.counter(
                    "quality.canary_runs_total",
                    help="canary probe runs by outcome",
                ).inc(
                    appliance=appliance,
                    outcome="pass" if result.passed else "fail",
                )
        return results

    def evaluate(self, models: dict | None = None) -> dict:
        """One monitoring tick: drift checks (+ canaries when models are
        supplied), alert updates; returns :meth:`report`."""
        if models:
            self.run_canaries(models)
        with self._lock:
            references = dict(self._references)
        for appliance, reference in references.items():
            live = self.live_profile(appliance)
            drift_report = self.detector.compare(reference, live)
            with self._lock:
                self._drift_reports[appliance] = drift_report
                canary_result = self._canary_results.get(appliance)
            level = drift_report.level
            if canary_result is not None:
                level = LEVELS[
                    max(severity(level), severity(canary_result.level))
                ]
            self._alert(appliance).observe(level)
            if obs.enabled():
                obs.registry.counter(
                    "quality.drift_checks_total",
                    help="drift evaluations by resulting level",
                ).inc(appliance=appliance, level=drift_report.level)
        return self.report()

    # -- reporting ---------------------------------------------------------

    def status(self) -> dict:
        """Per-appliance debounced states + the overall worst-of."""
        with self._lock:
            states = {
                appliance: machine.state
                for appliance, machine in self._alerts.items()
            }
        overall = "ok"
        if states:
            overall = LEVELS[max(severity(s) for s in states.values())]
        return {"overall": overall, "appliances": states}

    def report(self) -> dict:
        """The full quality rollup (JSON-serializable)."""
        with self._lock:
            references = dict(self._references)
            drift_reports = dict(self._drift_reports)
            canary_results = dict(self._canary_results)
            alerts = {a: m.snapshot() for a, m in self._alerts.items()}
        appliances = {}
        for appliance in sorted(
            set(references) | set(drift_reports) | set(canary_results)
        ):
            live = self.live_profile(appliance)
            reference = references.get(appliance)
            drift_report = drift_reports.get(appliance)
            canary_result = canary_results.get(appliance)
            appliances[appliance] = {
                "reference": reference.snapshot() if reference else None,
                "live": live.snapshot(),
                "drift": drift_report.to_dict() if drift_report else None,
                "canary": canary_result.to_dict() if canary_result else None,
                "alert": alerts.get(appliance),
            }
        return {"status": self.status(), "appliances": appliances}


def format_report(report: dict) -> str:
    """ASCII rendering of :meth:`QualityMonitor.report` for the
    ``devicescope quality`` CLI."""
    status = report.get("status", {})
    lines = [f"quality: {status.get('overall', 'ok').upper()}"]
    for appliance, section in report.get("appliances", {}).items():
        alert = section.get("alert") or {}
        state = alert.get("state", "ok")
        lines.append(f"\n== {appliance} [{state}] ==")
        live = section.get("live") or {}
        reference = section.get("reference") or {}
        lines.append(
            f"  windows: live={live.get('windows', 0)} "
            f"reference={reference.get('windows', 0)}"
        )
        drift = section.get("drift")
        if drift:
            if drift.get("insufficient"):
                lines.append("  drift: insufficient live data")
            else:
                lines.append(
                    f"  drift: {drift.get('level', 'ok')} "
                    f"(n_live={drift.get('n_live', 0)})"
                )
                header = (
                    f"    {'feature':<16} {'psi':>8} {'ks':>7} "
                    f"{'ks_p':>8} {'ref':>9} {'live':>9}  level"
                )
                lines.append(header)
                for feature in drift.get("features", []):
                    lines.append(
                        f"    {feature['feature']:<16} "
                        f"{feature['psi']:>8.4f} {feature['ks']:>7.3f} "
                        f"{feature['ks_p']:>8.2g} "
                        f"{feature['reference_mean']:>9.3g} "
                        f"{feature['live_mean']:>9.3g}  {feature['level']}"
                    )
        canary = section.get("canary")
        if canary:
            verdict = "pass" if canary.get("passed") else "FAIL"
            lines.append(
                f"  canary: {verdict} "
                f"(max_prob_delta={canary.get('max_probability_delta', 0):.4f}, "
                f"min_status_agreement="
                f"{canary.get('min_status_agreement', 1):.3f}, "
                f"detected_mismatches={canary.get('detected_mismatches', 0)})"
            )
    return "\n".join(lines)
