"""``repro.quality`` — model-quality monitoring and drift detection.

Observability (``repro.obs``) answers *"is the service fast and up?"*;
this package answers *"are the answers still right?"* — the failure
mode that matters for a NILM detector is silent: inputs shift (sampling
rate drops, appliance mix changes) or the model changes underneath the
service (corrupted checkpoint, bad hot-swap) and the verdicts quietly
stop being trustworthy while every latency SLO stays green.

Layers (DESIGN.md §10):

* :mod:`~repro.quality.profiles` — per-appliance prediction + input
  distribution tracking (:class:`ApplianceProfile`), JSON round-trip
  for frozen reference profiles.
* :mod:`~repro.quality.drift` — PSI/KS detectors
  (:class:`DriftDetector`) comparing live vs reference.
* :mod:`~repro.quality.canary` — fixed-window probes
  (:class:`CanaryProbe`) that catch model change with unchanged inputs.
* :mod:`~repro.quality.alerts` — the ok→warn→alert
  :class:`AlertStateMachine` with hysteresis + cooldown.
* :mod:`~repro.quality.monitor` — :class:`QualityMonitor`, the hub
  wiring all of the above into ``DeviceScope.health()`` and
  ``devicescope quality``.

Hook contract: ``CamAL.localize_watts(..., appliance="kettle")`` calls
:func:`observe` on every attributed batch. With no monitor installed
(the default) that is a single ``None`` check — the convention
``repro.obs`` established: zero cost unless opted in.
"""

from __future__ import annotations

from .alerts import AlertStateMachine
from .canary import CanaryProbe, CanaryResult
from .drift import (
    LEVELS,
    DriftDetector,
    DriftReport,
    FeatureDrift,
    ks_pvalue,
    ks_statistic,
    psi,
    severity,
)
from .monitor import QualityMonitor, format_report
from .profiles import (
    ApplianceProfile,
    DistTracker,
    WindowObservation,
    build_reference,
    observations_from_result,
)

__all__ = [
    "LEVELS",
    "severity",
    "psi",
    "ks_statistic",
    "ks_pvalue",
    "DistTracker",
    "WindowObservation",
    "observations_from_result",
    "ApplianceProfile",
    "build_reference",
    "DriftDetector",
    "DriftReport",
    "FeatureDrift",
    "CanaryProbe",
    "CanaryResult",
    "AlertStateMachine",
    "QualityMonitor",
    "format_report",
    "install",
    "uninstall",
    "monitor",
    "observe",
]

#: The installed process-wide monitor (None = quality tracking off).
_MONITOR: QualityMonitor | None = None


def install(quality_monitor: QualityMonitor) -> QualityMonitor:
    """Make ``quality_monitor`` the process-wide monitor fed by the
    ``CamAL.localize_watts`` hook; returns it for chaining."""
    global _MONITOR
    if not isinstance(quality_monitor, QualityMonitor):
        raise TypeError("install() expects a QualityMonitor")
    _MONITOR = quality_monitor
    return quality_monitor


def uninstall() -> None:
    """Remove the installed monitor (hook returns to a no-op)."""
    global _MONITOR
    _MONITOR = None


def monitor() -> QualityMonitor | None:
    """The installed monitor, or None."""
    return _MONITOR


def observe(appliance: str | None, watts, result) -> None:
    """The inference hook: feed one localization batch to the installed
    monitor. No-op when no monitor is installed or the call is
    unattributed (``appliance`` falsy) — reference building and canary
    probes rely on the latter to stay out of the live distribution."""
    if _MONITOR is None or not appliance:
        return
    _MONITOR.observe(appliance, watts, result)
