"""Canary probes: re-score fixed windows against stored expectations.

Drift detection watches the *inputs and answer distributions*; a canary
watches the *model itself*. A :class:`CanaryProbe` freezes a handful of
reference windows together with the outputs the current checkpoint
produced for them (:meth:`CanaryProbe.capture`). Re-running the probe
later (:meth:`CanaryProbe.run`) re-scores the exact same windows —
if the probabilities moved beyond tolerance or localized statuses stop
agreeing, the model changed underneath us: a silently corrupted or
wrongly hot-swapped checkpoint, an accidental in-place retrain, a
numerics regression. That is the failure mode no amount of input
monitoring can see, because the inputs never changed.

Probes serialize to JSON so the registry/serve layers can store them
next to the checkpoint they were captured from.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

__all__ = ["CanaryResult", "CanaryProbe"]


@dataclass(frozen=True)
class CanaryResult:
    """One probe run's verdict."""

    passed: bool
    n_windows: int
    max_probability_delta: float
    min_status_agreement: float
    detected_mismatches: int

    @property
    def level(self) -> str:
        """Severity in the shared drift/alert vocabulary."""
        return "ok" if self.passed else "alert"

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "n_windows": self.n_windows,
            "max_probability_delta": self.max_probability_delta,
            "min_status_agreement": self.min_status_agreement,
            "detected_mismatches": self.detected_mismatches,
        }


class CanaryProbe:
    """Fixed windows + the expected outputs of a known-good checkpoint.

    Parameters
    ----------
    windows:
        ``(N, T)`` raw watt windows (clean — canaries must isolate model
        change from input defects).
    expected_probabilities / expected_detected / expected_status:
        The outputs captured from the reference checkpoint.
    probability_tolerance:
        Maximum per-window absolute probability drift allowed.
    status_tolerance:
        Maximum per-window fraction of status samples allowed to flip.
    """

    def __init__(
        self,
        windows,
        expected_probabilities,
        expected_detected,
        expected_status,
        probability_tolerance: float = 0.02,
        status_tolerance: float = 0.02,
    ):
        self.windows = np.asarray(windows, dtype=np.float64)
        if self.windows.ndim != 2 or not self.windows.size:
            raise ValueError("windows must be a non-empty (N, T) array")
        if np.isnan(self.windows).any():
            raise ValueError("canary windows must be clean (no NaN)")
        self.expected_probabilities = np.asarray(
            expected_probabilities, dtype=np.float64
        )
        self.expected_detected = np.asarray(expected_detected, dtype=bool)
        self.expected_status = np.asarray(expected_status, dtype=np.float64)
        n = self.windows.shape[0]
        if (
            self.expected_probabilities.shape != (n,)
            or self.expected_detected.shape != (n,)
            or self.expected_status.shape != self.windows.shape
        ):
            raise ValueError("expected outputs must align with windows")
        if probability_tolerance < 0 or status_tolerance < 0:
            raise ValueError("tolerances must be >= 0")
        self.probability_tolerance = float(probability_tolerance)
        self.status_tolerance = float(status_tolerance)

    @classmethod
    def capture(
        cls,
        model,
        windows,
        probability_tolerance: float = 0.02,
        status_tolerance: float = 0.02,
    ) -> "CanaryProbe":
        """Snapshot the current checkpoint's answers as the expectation."""
        windows = np.asarray(windows, dtype=np.float64)
        result = model.localize_watts(windows)
        return cls(
            windows,
            result.probabilities,
            result.detected,
            result.status,
            probability_tolerance=probability_tolerance,
            status_tolerance=status_tolerance,
        )

    def run(self, model) -> CanaryResult:
        """Re-score the probe windows and compare against expectations."""
        result = model.localize_watts(self.windows)
        prob_delta = np.abs(
            np.asarray(result.probabilities, dtype=np.float64)
            - self.expected_probabilities
        )
        detected_mismatches = int(
            (np.asarray(result.detected, dtype=bool) != self.expected_detected)
            .sum()
        )
        status = np.asarray(result.status, dtype=np.float64)
        agreement = np.mean(
            (status > 0.5) == (self.expected_status > 0.5), axis=1
        )
        passed = (
            bool((prob_delta <= self.probability_tolerance).all())
            and detected_mismatches == 0
            and bool((agreement >= 1.0 - self.status_tolerance).all())
        )
        return CanaryResult(
            passed=passed,
            n_windows=self.windows.shape[0],
            max_probability_delta=float(prob_delta.max()),
            min_status_agreement=float(agreement.min()),
            detected_mismatches=detected_mismatches,
        )

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "windows": self.windows.tolist(),
            "expected_probabilities": self.expected_probabilities.tolist(),
            "expected_detected": self.expected_detected.tolist(),
            "expected_status": self.expected_status.tolist(),
            "probability_tolerance": self.probability_tolerance,
            "status_tolerance": self.status_tolerance,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CanaryProbe":
        return cls(
            payload["windows"],
            payload["expected_probabilities"],
            payload["expected_detected"],
            payload["expected_status"],
            probability_tolerance=payload.get("probability_tolerance", 0.02),
            status_tolerance=payload.get("status_tolerance", 0.02),
        )

    def save(self, path: str | os.PathLike) -> None:
        tmp = os.fspath(path) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CanaryProbe":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
