"""Distribution profiles: what the model answers and what it is fed.

Detection quality degrades *silently* when the input distribution
shifts (low-sampling-rate NILM, arXiv 2111.05120) or a retrained
ensemble regresses (ensemble NILM, arXiv 1802.06963) — nothing crashes,
the verdicts just stop being right. The first step of catching that is
tracking distributions, not point values:

* :class:`WindowObservation` — one localized window reduced to the
  features quality monitoring cares about: detection probability,
  detected flag, localized (ON) fraction, mean power, and the robust
  layer's defect rates (NaN / clipped samples, repaired / degraded
  verdicts).
* :class:`DistTracker` — a fixed-bucket histogram accumulator
  (Prometheus-style edges, overflow bucket) that PSI/KS drift
  detectors can compare bin-for-bin.
* :class:`ApplianceProfile` — the per-appliance aggregate of both:
  prediction-distribution tracking *and* input-feature tracking, with
  JSON round-trip so a frozen **reference profile** (built from the
  simulator's known-answer scenarios) survives process restarts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PROBABILITY_EDGES",
    "FRACTION_EDGES",
    "POWER_EDGES",
    "DistTracker",
    "WindowObservation",
    "observations_from_result",
    "ApplianceProfile",
    "build_reference",
]

#: Detection-probability bucket upper edges (last bucket catches 1.0).
PROBABILITY_EDGES = tuple(np.round(np.linspace(0.1, 1.0, 10), 10))

#: Localized-fraction bucket edges (share of ON samples per window).
FRACTION_EDGES = PROBABILITY_EDGES

#: Window mean-power bucket edges in watts (overflow above 6.4 kW).
POWER_EDGES = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0)


class DistTracker:
    """Fixed-bucket distribution accumulator.

    Bucket ``i`` counts values ``v`` with ``edges[i-1] < v <= edges[i]``
    plus one overflow bucket above the last edge — the same convention
    as :class:`repro.obs.metrics.Histogram`, kept tiny and lock-free
    here because profiles are owned by one monitor.
    """

    def __init__(self, edges: tuple, counts=None):
        self.edges = tuple(float(e) for e in edges)
        if len(self.edges) < 1:
            raise ValueError("need at least one bucket edge")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self._edge_array = np.asarray(self.edges, dtype=np.float64)
        if counts is None:
            self.counts = np.zeros(len(self.edges) + 1, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (len(self.edges) + 1,):
                raise ValueError("counts length must be len(edges) + 1")
            self.counts = counts.copy()
        self.total = 0.0
        self.count = int(self.counts.sum())

    def observe_many(self, values) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        values = values[np.isfinite(values)]
        if values.size == 0:
            return
        idx = np.searchsorted(self._edge_array, values, side="left")
        self.counts += np.bincount(idx, minlength=len(self.edges) + 1)
        self.count += int(values.size)
        self.total += float(values.sum())

    def observe(self, value: float) -> None:
        self.observe_many(np.asarray([value]))

    def proportions(self) -> np.ndarray:
        """Normalized bucket mass (all zeros when never observed)."""
        if self.count == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / float(self.count)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def to_dict(self) -> dict:
        return {"edges": list(self.edges), "counts": self.counts.tolist()}

    @classmethod
    def from_dict(cls, payload: dict) -> "DistTracker":
        return cls(tuple(payload["edges"]), counts=payload["counts"])


@dataclass(frozen=True)
class WindowObservation:
    """One localized window reduced to quality-monitoring features."""

    probability: float
    detected: bool
    on_fraction: float
    power_mean: float
    nan_fraction: float
    clipped_fraction: float
    repaired: bool
    degraded: bool


def observations_from_result(watts, result) -> list[WindowObservation]:
    """Reduce a raw watt batch + its CamAL result to observations.

    ``watts`` is the *pre-repair* ``(N, T)`` input, so NaN/negative
    rates reflect what arrived, not what the robust layer fixed.
    ``result`` is duck-typed on the :class:`~repro.core.CamALResult`
    fields (``probabilities``/``detected``/``status``/``repaired``/
    ``degraded``).
    """
    watts = np.asarray(watts, dtype=np.float64)
    if watts.ndim != 2:
        raise ValueError(f"expected (N, T) watts, got shape {watts.shape}")
    n = watts.shape[0]
    nan_fraction = np.isnan(watts).mean(axis=1)
    with np.errstate(invalid="ignore"):
        clipped_fraction = np.nanmean(watts < 0.0, axis=1)
        power_mean = np.nanmean(np.clip(watts, 0.0, None), axis=1)
    repaired = np.asarray(result.repaired, dtype=bool)
    degraded = np.asarray(result.degraded, dtype=bool)
    out = []
    for i in range(n):
        out.append(
            WindowObservation(
                probability=float(result.probabilities[i]),
                detected=bool(result.detected[i]),
                on_fraction=float(np.mean(result.status[i])),
                power_mean=float(power_mean[i]),
                nan_fraction=float(nan_fraction[i]),
                clipped_fraction=float(np.nan_to_num(clipped_fraction[i])),
                repaired=bool(repaired[i]) if repaired.size else False,
                degraded=bool(degraded[i]) if degraded.size else False,
            )
        )
    return out


class ApplianceProfile:
    """Per-appliance prediction + input distribution aggregate."""

    def __init__(self, appliance: str = ""):
        self.appliance = appliance
        self.windows = 0
        self.detected = 0
        self.repaired_windows = 0
        self.degraded_windows = 0
        self.nan_mass = 0.0  # sum of per-window NaN fractions
        self.clip_mass = 0.0  # sum of per-window negative fractions
        self.probability = DistTracker(PROBABILITY_EDGES)
        self.on_fraction = DistTracker(FRACTION_EDGES)
        self.power_mean = DistTracker(POWER_EDGES)

    # -- accumulation ------------------------------------------------------

    def observe(self, observation: WindowObservation) -> None:
        self.windows += 1
        self.detected += int(observation.detected)
        self.repaired_windows += int(observation.repaired)
        self.degraded_windows += int(observation.degraded)
        self.nan_mass += observation.nan_fraction
        self.clip_mass += observation.clipped_fraction
        self.probability.observe(observation.probability)
        if not observation.degraded:
            self.on_fraction.observe(observation.on_fraction)
        self.power_mean.observe(observation.power_mean)

    def observe_batch(self, watts, result) -> None:
        for observation in observations_from_result(watts, result):
            self.observe(observation)

    @classmethod
    def from_observations(
        cls, appliance: str, observations
    ) -> "ApplianceProfile":
        profile = cls(appliance)
        for observation in observations:
            profile.observe(observation)
        return profile

    # -- derived rates -----------------------------------------------------

    @property
    def detection_rate(self) -> float:
        return self.detected / self.windows if self.windows else float("nan")

    @property
    def nan_rate(self) -> float:
        return self.nan_mass / self.windows if self.windows else float("nan")

    @property
    def clip_rate(self) -> float:
        return self.clip_mass / self.windows if self.windows else float("nan")

    @property
    def degraded_rate(self) -> float:
        return (
            self.degraded_windows / self.windows
            if self.windows
            else float("nan")
        )

    @property
    def repaired_rate(self) -> float:
        return (
            self.repaired_windows / self.windows
            if self.windows
            else float("nan")
        )

    def snapshot(self) -> dict:
        """Plain-dict summary (JSON-serializable) for reports."""
        return {
            "appliance": self.appliance,
            "windows": self.windows,
            "detection_rate": self.detection_rate,
            "nan_rate": self.nan_rate,
            "clip_rate": self.clip_rate,
            "repaired_rate": self.repaired_rate,
            "degraded_rate": self.degraded_rate,
            "probability_mean": self.probability.mean,
            "power_mean_w": self.power_mean.mean,
        }

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "appliance": self.appliance,
            "windows": self.windows,
            "detected": self.detected,
            "repaired_windows": self.repaired_windows,
            "degraded_windows": self.degraded_windows,
            "nan_mass": self.nan_mass,
            "clip_mass": self.clip_mass,
            "probability": self.probability.to_dict(),
            "on_fraction": self.on_fraction.to_dict(),
            "power_mean": self.power_mean.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ApplianceProfile":
        profile = cls(payload.get("appliance", ""))
        profile.windows = int(payload["windows"])
        profile.detected = int(payload["detected"])
        profile.repaired_windows = int(payload.get("repaired_windows", 0))
        profile.degraded_windows = int(payload.get("degraded_windows", 0))
        profile.nan_mass = float(payload.get("nan_mass", 0.0))
        profile.clip_mass = float(payload.get("clip_mass", 0.0))
        profile.probability = DistTracker.from_dict(payload["probability"])
        profile.on_fraction = DistTracker.from_dict(payload["on_fraction"])
        profile.power_mean = DistTracker.from_dict(payload["power_mean"])
        return profile

    def save(self, path: str | os.PathLike) -> None:
        tmp = os.fspath(path) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ApplianceProfile":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ApplianceProfile({self.appliance!r}, windows={self.windows}, "
            f"detection_rate={self.detection_rate:.3f})"
            if self.windows
            else f"ApplianceProfile({self.appliance!r}, empty)"
        )


def build_reference(model, appliance: str, watts) -> ApplianceProfile:
    """Freeze a reference profile from known-answer scenario windows.

    Runs ``model.localize_watts`` over clean ``(N, T)`` watt windows
    (typically cut from the simulator's scenarios, whose ground truth
    is known) and accumulates the outputs into an
    :class:`ApplianceProfile`. The call is deliberately *unattributed*
    (``appliance=None`` on the model side) so an installed
    :class:`~repro.quality.monitor.QualityMonitor` does not count
    reference construction as live traffic.
    """
    watts = np.asarray(watts, dtype=np.float64)
    result = model.localize_watts(watts)
    profile = ApplianceProfile(appliance)
    profile.observe_batch(watts, result)
    return profile
