"""Synthetic smart-meter datasets emulating UK-DALE, REFIT, and IDEAL.

This package is the data substrate of the reproduction (DESIGN.md §2):
physically-motivated appliance signature models, household simulation
with background load and meter outages, dataset profiles matching the
three public datasets' characteristics, resampling to the common 1-min
frequency, subsequence extraction with missing-data omission, and the
weak/strong labeling regimes the paper compares.
"""

from .appliances import (
    APPLIANCE_NAMES,
    APPLIANCES,
    ApplianceSpec,
    TimeOfDayPreference,
    get_appliance_spec,
    render_activation,
    simulate_appliance,
    simulate_appliance_day,
)
from .build import build_dataset, draw_balanced_ownership
from .household import HouseholdSimulator, fridge_cycle, lighting_load, misc_electronics
from .io import dataset_from_dir, dataset_to_dir, house_from_csv, house_to_csv
from .labels import (
    count_strong_labels,
    count_weak_labels,
    strong_labels,
    weak_label_from_strong,
    weak_labels_per_window,
)
from .profiles import PROFILES, DatasetProfile, get_profile
from .resample import (
    from_timestamps,
    resample_dataset,
    resample_house,
    resample_mean,
)
from .store import House, SmartMeterDataset
from .windows import (
    WINDOW_LENGTHS,
    Standardizer,
    WindowSet,
    extract_windows,
    make_windows,
    window_samples,
)

__all__ = [
    "APPLIANCES",
    "APPLIANCE_NAMES",
    "ApplianceSpec",
    "TimeOfDayPreference",
    "get_appliance_spec",
    "render_activation",
    "simulate_appliance",
    "simulate_appliance_day",
    "HouseholdSimulator",
    "fridge_cycle",
    "lighting_load",
    "misc_electronics",
    "House",
    "SmartMeterDataset",
    "DatasetProfile",
    "PROFILES",
    "get_profile",
    "build_dataset",
    "draw_balanced_ownership",
    "house_to_csv",
    "house_from_csv",
    "dataset_to_dir",
    "dataset_from_dir",
    "resample_mean",
    "resample_house",
    "resample_dataset",
    "from_timestamps",
    "strong_labels",
    "weak_label_from_strong",
    "weak_labels_per_window",
    "count_strong_labels",
    "count_weak_labels",
    "WINDOW_LENGTHS",
    "window_samples",
    "extract_windows",
    "Standardizer",
    "WindowSet",
    "make_windows",
]
