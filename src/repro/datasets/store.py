"""In-memory data store for smart-meter datasets.

Mirrors the structure of the public NILM datasets (UK-DALE, REFIT,
IDEAL): a dataset is a collection of houses, each with an aggregate mains
channel, per-appliance submeter channels (used only for evaluation and
the "Per device" view), and a possession survey.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..robust import faults
from ..robust.retry import retriable

__all__ = ["House", "SmartMeterDataset"]


@dataclass
class House:
    """One monitored household.

    Attributes
    ----------
    house_id:
        Stable identifier, e.g. ``"ukdale_house_1"``.
    step_s:
        Sampling period of all channels in seconds.
    aggregate:
        Mains watt readings; may contain NaN where the meter dropped out.
    submeters:
        Appliance name → watt readings (all-zero when not owned).
        Ground truth: used only for evaluation, never for weak training
        labels.
    possession:
        Appliance name → ownership flag (the IDEAL-style survey label).
    """

    house_id: str
    step_s: float
    aggregate: np.ndarray
    submeters: dict[str, np.ndarray] = field(default_factory=dict)
    possession: dict[str, bool] = field(default_factory=dict)

    def __post_init__(self):
        self.aggregate = np.asarray(self.aggregate, dtype=np.float64)
        if self.aggregate.ndim != 1:
            raise ValueError("aggregate must be 1-D")
        for name, channel in self.submeters.items():
            channel = np.asarray(channel, dtype=np.float64)
            if channel.shape != self.aggregate.shape:
                raise ValueError(
                    f"submeter {name!r} length {channel.shape} does not match "
                    f"aggregate {self.aggregate.shape}"
                )
            self.submeters[name] = channel

    @property
    def n_steps(self) -> int:
        return len(self.aggregate)

    @property
    def duration_days(self) -> float:
        return self.n_steps * self.step_s / 86400.0

    @property
    def appliances(self) -> tuple[str, ...]:
        return tuple(self.submeters)

    def hours_index(self) -> np.ndarray:
        """Hour-of-recording for each sample (for display axes)."""
        return np.arange(self.n_steps) * self.step_s / 3600.0

    @retriable(max_attempts=3, backoff=0.01, name="store.read")
    def read_window(self, start: int, length: int) -> np.ndarray:
        """One aggregate window via the fault-tolerant read path.

        This is the store's "read" in production terms: the Playground
        and the sliding-window pipeline fetch aggregate slices through
        it rather than indexing :attr:`aggregate` directly, so transient
        backend failures (simulated by the ``store.read`` fault site)
        are retried with backoff, and injected NaN bursts flow into the
        validators downstream. Always returns a copy.
        """
        faults.checkpoint("store.read")
        window = np.array(self.aggregate[start : start + length])
        return faults.corrupt("store.read", window)


@dataclass
class SmartMeterDataset:
    """A named collection of houses with a common sampling period."""

    name: str
    houses: list[House]
    step_s: float
    label_source: str = "submeter"  # or "possession" (IDEAL style)

    def __post_init__(self):
        if not self.houses:
            raise ValueError("a dataset needs at least one house")
        if self.label_source not in ("submeter", "possession"):
            raise ValueError(f"unknown label source {self.label_source!r}")
        for house in self.houses:
            if house.step_s != self.step_s:
                raise ValueError(
                    f"house {house.house_id} sampled at {house.step_s}s, "
                    f"dataset expects {self.step_s}s"
                )

    @property
    def house_ids(self) -> list[str]:
        return [house.house_id for house in self.houses]

    def get_house(self, house_id: str) -> House:
        for house in self.houses:
            if house.house_id == house_id:
                return house
        raise KeyError(
            f"no house {house_id!r} in dataset {self.name!r}; "
            f"available: {', '.join(self.house_ids)}"
        )

    def split_houses(
        self,
        test_fraction: float = 0.4,
        rng: np.random.Generator | None = None,
        stratify_by: str | None = None,
    ) -> tuple["SmartMeterDataset", "SmartMeterDataset"]:
        """Split into disjoint train/test datasets **by house**.

        The paper is explicit that train and test houses are distinct
        (§II.A, Training Phase); splitting windows of the same house
        would leak the household's appliance fleet into the test set.

        ``stratify_by`` names an appliance whose owners/non-owners are
        split proportionally, guaranteeing (when counts allow) that both
        sides of the split see both classes — otherwise a small dataset
        can randomly put every dishwasher owner in training and none in
        the evaluation houses.
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = rng or np.random.default_rng(0)
        n = len(self.houses)
        n_test = max(int(round(n * test_fraction)), 1)
        if n_test >= n:
            raise ValueError(
                f"cannot hold out {n_test} of {n} houses for testing"
            )
        if stratify_by is None:
            order = rng.permutation(n)
            test_idx = set(order[:n_test].tolist())
        else:
            owners = [
                i
                for i, house in enumerate(self.houses)
                if house.possession.get(stratify_by, False)
            ]
            others = [i for i in range(n) if i not in set(owners)]
            if not owners:
                raise ValueError(
                    f"no house owns {stratify_by!r}; cannot stratify"
                )
            test_idx: set[int] = set()
            # Proportional allocation, at least one owner held out (and
            # one kept for training) whenever there are two or more.
            n_owner_test = int(round(len(owners) * test_fraction))
            n_owner_test = min(max(n_owner_test, 1), max(len(owners) - 1, 1))
            owner_order = rng.permutation(len(owners))
            test_idx.update(owners[i] for i in owner_order[:n_owner_test])
            n_other_test = n_test - len(test_idx)
            if others and n_other_test > 0:
                n_other_test = min(n_other_test, max(len(others) - 1, 1))
                other_order = rng.permutation(len(others))
                test_idx.update(others[i] for i in other_order[:n_other_test])
        train_houses = [h for i, h in enumerate(self.houses) if i not in test_idx]
        test_houses = [h for i, h in enumerate(self.houses) if i in test_idx]
        make = lambda houses, tag: SmartMeterDataset(  # noqa: E731
            name=f"{self.name}/{tag}",
            houses=houses,
            step_s=self.step_s,
            label_source=self.label_source,
        )
        return make(train_houses, "train"), make(test_houses, "test")
