"""Subsequence extraction and the training-ready WindowSet.

The paper divides each household's consumption into subsequences,
omitting those with missing data, and attaches a single weak label per
subsequence (§II.A). This module implements that pipeline plus the
standardization used by the classifiers and by CamAL's attention step.

Window lengths follow the GUI options: 6 hours, 12 hours, 1 day — at the
common 1-minute frequency those are 360, 720 and 1440 samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..robust.validate import validate_series
from .labels import strong_labels, weak_labels_per_window
from .store import House, SmartMeterDataset

__all__ = [
    "WINDOW_LENGTHS",
    "window_samples",
    "extract_windows",
    "Standardizer",
    "WindowSet",
    "make_windows",
]

#: GUI window-length options (§III) in minutes at the 1-min frequency.
WINDOW_LENGTHS: dict[str, int] = {"6h": 360, "12h": 720, "1day": 1440}


def window_samples(window: str | int, step_s: float = 60.0) -> int:
    """Resolve a window spec (``"6h"``/``"12h"``/``"1day"`` or a sample
    count) to a number of samples at ``step_s`` resolution."""
    if isinstance(window, str):
        try:
            minutes = WINDOW_LENGTHS[window]
        except KeyError:
            raise KeyError(
                f"unknown window {window!r}; options: "
                f"{', '.join(WINDOW_LENGTHS)}"
            ) from None
        samples = minutes * 60.0 / step_s
        if abs(samples - round(samples)) > 1e-9:
            raise ValueError(
                f"window {window} is not a whole number of {step_s}s samples"
            )
        return int(round(samples))
    if window < 2:
        raise ValueError("window must span at least 2 samples")
    return int(window)


def extract_windows(
    series: np.ndarray, length: int, stride: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Cut ``series`` into complete windows, dropping any with NaN.

    Returns ``(windows, starts)`` where ``windows`` is ``(n, length)``
    and ``starts`` holds each window's start index in the source series.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("series must be 1-D")
    if length < 1:
        raise ValueError("length must be >= 1")
    stride = stride or length
    if stride < 1:
        raise ValueError("stride must be >= 1")
    starts = np.arange(0, len(series) - length + 1, stride)
    if len(starts) == 0:
        return np.empty((0, length)), np.empty(0, dtype=np.int64)
    windows = np.stack([series[s : s + length] for s in starts])
    keep = ~np.isnan(windows).any(axis=1)
    return windows[keep], starts[keep]


@dataclass
class Standardizer:
    """Global z-score scaler fit on training aggregates.

    CamAL's attention step (paper §II.B step 5) computes
    ``sigmoid(CAM(t) * x(t))`` — meaningful only when ``x`` is centred:
    below-average power maps to negative values (→ status OFF) and
    appliance activations map to positive values. A *global* scaler
    (rather than per-window) keeps the watt scale comparable across
    windows, so a kettle spike looks the same everywhere.
    """

    mean: float = 0.0
    std: float = 1.0

    @classmethod
    def fit(cls, windows: np.ndarray) -> "Standardizer":
        values = np.asarray(windows, dtype=np.float64).ravel()
        values = values[~np.isnan(values)]
        if values.size == 0:
            raise ValueError("cannot fit a standardizer on empty data")
        std = float(values.std())
        return cls(mean=float(values.mean()), std=max(std, 1e-6))

    def transform(self, windows: np.ndarray) -> np.ndarray:
        return (np.asarray(windows, dtype=np.float64) - self.mean) / self.std

    def inverse(self, windows: np.ndarray) -> np.ndarray:
        return np.asarray(windows, dtype=np.float64) * self.std + self.mean


@dataclass
class WindowSet:
    """Training/evaluation-ready windows for one appliance.

    Attributes
    ----------
    x:
        Standardized aggregates, shape ``(n, 1, T)`` (channel-first for
        the conv nets).
    x_watts:
        Raw aggregates in watts, shape ``(n, T)`` (for display and for
        watt-space baselines).
    y_weak:
        Window-level labels ``(n,)``.
    y_strong:
        Per-timestep ground-truth status ``(n, T)`` — used for training
        the strongly supervised baselines and for *evaluating* all
        localizers; never for training CamAL.
    house_ids, starts:
        Provenance of each window.
    appliance:
        Target appliance name.
    scaler:
        The fitted standardizer (shared with the test split).
    """

    x: np.ndarray
    x_watts: np.ndarray
    y_weak: np.ndarray
    y_strong: np.ndarray
    house_ids: list[str]
    starts: np.ndarray
    appliance: str
    scaler: Standardizer = field(default_factory=Standardizer)

    def __post_init__(self):
        n = len(self.x)
        shapes_ok = (
            self.x.ndim == 3
            and self.x.shape[1] == 1
            and self.x_watts.shape == (n, self.x.shape[2])
            and self.y_weak.shape == (n,)
            and self.y_strong.shape == (n, self.x.shape[2])
            and len(self.house_ids) == n
            and self.starts.shape == (n,)
        )
        if not shapes_ok:
            raise ValueError("inconsistent WindowSet component shapes")

    def __len__(self) -> int:
        return len(self.x)

    @property
    def window_length(self) -> int:
        return self.x.shape[2]

    @property
    def positive_fraction(self) -> float:
        return float(self.y_weak.mean()) if len(self) else 0.0

    def subset(self, indices: np.ndarray) -> "WindowSet":
        indices = np.asarray(indices)
        return WindowSet(
            x=self.x[indices],
            x_watts=self.x_watts[indices],
            y_weak=self.y_weak[indices],
            y_strong=self.y_strong[indices],
            house_ids=[self.house_ids[i] for i in np.atleast_1d(indices)],
            starts=self.starts[indices],
            appliance=self.appliance,
            scaler=self.scaler,
        )


def _house_windows(
    house: House,
    appliance: str,
    length: int,
    stride: int | None,
    repair: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aligned aggregate and status windows for one house."""
    aggregate = house.aggregate
    if repair:
        # Interpolate short meter dropouts so their windows survive the
        # missing-data omission; long gaps stay NaN and drop as before.
        repaired, _report = validate_series(
            aggregate, name=f"{house.house_id}.aggregate"
        )
        if repaired is not None:
            aggregate = repaired
    agg_windows, starts = extract_windows(aggregate, length, stride)
    if appliance not in house.submeters:
        raise KeyError(
            f"house {house.house_id} has no submeter for {appliance!r}"
        )
    status = strong_labels(house.submeters[appliance], appliance)
    status_windows = (
        np.stack([status[s : s + length] for s in starts])
        if len(starts)
        else np.empty((0, length))
    )
    return agg_windows, status_windows, starts


def make_windows(
    dataset: SmartMeterDataset,
    appliance: str,
    window: str | int = "12h",
    stride: int | None = None,
    scaler: Standardizer | None = None,
    repair: bool = False,
) -> WindowSet:
    """Build a :class:`WindowSet` over every house of ``dataset``.

    Weak labels come from the dataset's ``label_source``: per-window
    activation for submetered datasets, the possession survey for
    IDEAL-style datasets. When ``scaler`` is None a new standardizer is
    fit on these windows (do that on the train split and pass the result
    when windowing the test split). ``repair=True`` interpolates short
    NaN gaps in each aggregate first (see :mod:`repro.robust`), so a
    brief meter dropout no longer discards a whole window.
    """
    length = window_samples(window, dataset.step_s)
    all_agg, all_status, all_starts, all_houses = [], [], [], []
    for house in dataset.houses:
        agg, status, starts = _house_windows(
            house, appliance, length, stride, repair=repair
        )
        all_agg.append(agg)
        all_status.append(status)
        all_starts.append(starts)
        all_houses.extend([house.house_id] * len(agg))
    x_watts = (
        np.concatenate(all_agg) if all_agg else np.empty((0, length))
    )
    y_strong = (
        np.concatenate(all_status) if all_status else np.empty((0, length))
    )
    starts = (
        np.concatenate(all_starts)
        if all_starts
        else np.empty(0, dtype=np.int64)
    )
    if dataset.label_source == "possession":
        possession_by_house = {
            house.house_id: float(house.possession.get(appliance, False))
            for house in dataset.houses
        }
        y_weak = np.array([possession_by_house[h] for h in all_houses])
    else:
        y_weak = weak_labels_per_window(y_strong)
    scaler = scaler or Standardizer.fit(x_watts)
    x = scaler.transform(x_watts)[:, None, :]
    return WindowSet(
        x=x,
        x_watts=x_watts,
        y_weak=y_weak,
        y_strong=y_strong,
        house_ids=all_houses,
        starts=starts,
        appliance=appliance,
        scaler=scaler,
    )
