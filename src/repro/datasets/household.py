"""Household-level simulation: base load, always-on appliances, noise.

A household's aggregate meter reading is the sum of the target appliances
(from :mod:`repro.datasets.appliances`), a set of background components
(fridge compressor cycling, lighting driven by a day/night occupancy
pattern, miscellaneous electronics blocks), and measurement noise —
exactly the additive structure the NILM problem assumes.
"""

from __future__ import annotations

import numpy as np

from .appliances import (
    SECONDS_PER_DAY,
    ApplianceSpec,
    simulate_appliance,
)
from .store import House

__all__ = [
    "fridge_cycle",
    "lighting_load",
    "misc_electronics",
    "HouseholdSimulator",
]


def fridge_cycle(
    n_steps: int, step_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Compressor duty cycle: ~100 W bursts, ~15 min on / ~25 min off."""
    power = rng.uniform(80.0, 140.0)
    trace = np.zeros(n_steps)
    t = 0
    while t < n_steps:
        on = max(int(rng.normal(900, 120) / step_s), 1)
        off = max(int(rng.normal(1500, 240) / step_s), 1)
        trace[t : t + on] = power * rng.normal(1.0, 0.02, size=len(trace[t : t + on]))
        t += on + off
    return np.clip(trace, 0.0, None)


def lighting_load(
    n_steps: int, step_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Occupancy-driven lighting: morning and evening plateaus."""
    steps_per_day = int(SECONDS_PER_DAY / step_s)
    hour = (np.arange(n_steps) % steps_per_day) * step_s / 3600.0
    # Smooth double bump centred at 7 h and 20 h.
    morning = np.exp(-0.5 * ((hour - 7.0) / 1.2) ** 2)
    evening = np.exp(-0.5 * ((hour - 20.5) / 2.0) ** 2)
    level = rng.uniform(60.0, 180.0)
    trace = level * (0.5 * morning + evening)
    # Lights switch in discrete steps; quantize and jitter.
    trace = np.round(trace / 20.0) * 20.0
    trace *= rng.normal(1.0, 0.05, size=n_steps)
    return np.clip(trace, 0.0, None)


def misc_electronics(
    n_steps: int, step_s: float, rng: np.random.Generator
) -> np.ndarray:
    """TV/computer/console usage as random rectangular blocks."""
    trace = np.zeros(n_steps)
    n_days = max(int(n_steps * step_s / SECONDS_PER_DAY), 1)
    n_blocks = rng.poisson(2.0 * n_days)
    for _ in range(n_blocks):
        start = rng.integers(0, n_steps)
        duration = max(int(rng.uniform(1800, 14400) / step_s), 1)
        end = min(start + duration, n_steps)
        trace[start:end] += rng.uniform(40.0, 250.0)
    return trace


class HouseholdSimulator:
    """Simulates one monitored household.

    Parameters
    ----------
    house_id:
        Stable identifier (also seeds display names).
    appliance_specs:
        Candidate appliances; ownership is drawn per house from each
        spec's ``penetration`` unless ``owned`` pins it.
    step_s:
        Native sampling period in seconds.
    base_load_w:
        ``(low, high)`` uniform bounds on the always-on standby power.
    noise_w:
        Std of additive Gaussian measurement noise on the aggregate.
    missing_rate:
        Expected number of meter outages per day; each outage erases a
        contiguous chunk of the aggregate with NaN (the paper's pipeline
        "omits subsequences with missing data").
    weekend_boost:
        Usage-rate multiplier on weekend days (real households run
        dishwashers and washing machines more on weekends).
    vacation_rate:
        Expected vacations per 30 days; each spans 2-5 days during which
        appliances, lighting, and electronics go quiet (fridge and base
        load stay on).
    start_weekday:
        Day-of-week of the recording's first day (0 = Monday); drawn at
        random when ``None``.
    """

    def __init__(
        self,
        house_id: str,
        appliance_specs: dict[str, ApplianceSpec],
        step_s: float = 60.0,
        base_load_w: tuple[float, float] = (60.0, 180.0),
        noise_w: float = 12.0,
        missing_rate: float = 0.1,
        owned: dict[str, bool] | None = None,
        weekend_boost: float = 1.0,
        vacation_rate: float = 0.0,
        start_weekday: int | None = None,
    ):
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        if noise_w < 0 or missing_rate < 0:
            raise ValueError("noise_w and missing_rate must be >= 0")
        if weekend_boost <= 0 or vacation_rate < 0:
            raise ValueError(
                "weekend_boost must be positive, vacation_rate >= 0"
            )
        if start_weekday is not None and not 0 <= start_weekday < 7:
            raise ValueError("start_weekday must be in [0, 7)")
        self.house_id = house_id
        self.appliance_specs = dict(appliance_specs)
        self.step_s = step_s
        self.base_load_w = base_load_w
        self.noise_w = noise_w
        self.missing_rate = missing_rate
        self.owned = dict(owned or {})
        self.weekend_boost = weekend_boost
        self.vacation_rate = vacation_rate
        self.start_weekday = start_weekday

    def _draw_ownership(self, rng: np.random.Generator) -> dict[str, bool]:
        ownership = {}
        for name, spec in self.appliance_specs.items():
            if name in self.owned:
                ownership[name] = bool(self.owned[name])
            else:
                ownership[name] = bool(rng.random() < spec.penetration)
        return ownership

    def _inject_missing(
        self, aggregate: np.ndarray, n_days: int, rng: np.random.Generator
    ) -> np.ndarray:
        n_gaps = rng.poisson(self.missing_rate * n_days)
        out = aggregate.copy()
        for _ in range(n_gaps):
            start = rng.integers(0, len(out))
            duration = max(int(rng.uniform(600, 7200) / self.step_s), 1)
            out[start : start + duration] = np.nan
        return out

    def _day_rate_multipliers(
        self, n_days: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-day usage-rate multipliers from weekends and vacations."""
        start = (
            self.start_weekday
            if self.start_weekday is not None
            else int(rng.integers(0, 7))
        )
        weekdays = (start + np.arange(n_days)) % 7
        multipliers = np.where(weekdays >= 5, self.weekend_boost, 1.0)
        n_vacations = rng.poisson(self.vacation_rate * n_days / 30.0)
        for _ in range(n_vacations):
            length = int(rng.integers(2, 6))
            first = int(rng.integers(0, max(n_days - length + 1, 1)))
            multipliers[first : first + length] = 0.0
        return multipliers

    def simulate(self, n_days: int, rng: np.random.Generator) -> House:
        """Render ``n_days`` of metering into a :class:`House`."""
        if n_days < 1:
            raise ValueError("n_days must be >= 1")
        n_steps = int(n_days * SECONDS_PER_DAY / self.step_s)
        ownership = self._draw_ownership(rng)
        rate_multipliers = self._day_rate_multipliers(n_days, rng)
        steps_per_day = int(SECONDS_PER_DAY / self.step_s)
        occupancy = np.repeat((rate_multipliers > 0).astype(float), steps_per_day)
        submeters: dict[str, np.ndarray] = {}
        for name, spec in self.appliance_specs.items():
            if ownership[name]:
                submeters[name] = simulate_appliance(
                    spec, n_days, self.step_s, rng,
                    rate_multipliers=rate_multipliers,
                )
            else:
                submeters[name] = np.zeros(n_steps)
        background = (
            rng.uniform(*self.base_load_w)
            + fridge_cycle(n_steps, self.step_s, rng)
            + lighting_load(n_steps, self.step_s, rng) * occupancy
            + misc_electronics(n_steps, self.step_s, rng) * occupancy
        )
        aggregate = background + sum(submeters.values())
        aggregate = aggregate + rng.normal(0.0, self.noise_w, size=n_steps)
        aggregate = np.clip(aggregate, 0.0, None)
        aggregate = self._inject_missing(aggregate, n_days, rng)
        return House(
            house_id=self.house_id,
            step_s=self.step_s,
            aggregate=aggregate,
            submeters=submeters,
            possession=ownership,
        )
