"""Label derivation and label accounting.

Two supervision regimes, matching the paper:

* **Strong labels** — per-timestep ON/OFF status derived by thresholding
  the appliance submeter (what seq2seq NILM baselines train on).
* **Weak labels** — one bit per subsequence. For UKDALE/REFIT-style
  datasets the bit is "the appliance ran at least once in this window";
  for IDEAL-style datasets it is the household possession survey answer
  (so every window of an owning house is positive — the weakest signal).

The label *counting* functions quantify the supervision cost used in
Fig. 3 and the 5200× headline: a weak label costs 1 per window, a strong
label costs 1 per timestep.
"""

from __future__ import annotations

import numpy as np

from .appliances import get_appliance_spec

__all__ = [
    "strong_labels",
    "weak_label_from_strong",
    "weak_labels_per_window",
    "count_strong_labels",
    "count_weak_labels",
]


def strong_labels(
    submeter: np.ndarray, appliance: str, on_threshold_w: float | None = None
) -> np.ndarray:
    """Per-timestep ON/OFF (float 0/1) from an appliance submeter trace."""
    threshold = (
        on_threshold_w
        if on_threshold_w is not None
        else get_appliance_spec(appliance).on_threshold_w
    )
    submeter = np.asarray(submeter, dtype=np.float64)
    return (np.nan_to_num(submeter, nan=0.0) > threshold).astype(np.float64)


def weak_label_from_strong(status: np.ndarray) -> float:
    """Window-level weak label: 1 iff the appliance was ever ON."""
    return float(np.any(np.asarray(status) > 0.5))


def weak_labels_per_window(status_windows: np.ndarray) -> np.ndarray:
    """Vectorized weak labels for a stack ``(n_windows, T)`` of statuses."""
    status_windows = np.asarray(status_windows)
    if status_windows.ndim != 2:
        raise ValueError(
            f"expected (n_windows, T) statuses, got {status_windows.shape}"
        )
    return (status_windows > 0.5).any(axis=1).astype(np.float64)


def count_strong_labels(n_windows: int, window_length: int) -> int:
    """Annotation cost of strong supervision: one label per timestep."""
    if n_windows < 0 or window_length < 1:
        raise ValueError("invalid window counts")
    return n_windows * window_length


def count_weak_labels(n_windows: int) -> int:
    """Annotation cost of weak supervision: one label per window."""
    if n_windows < 0:
        raise ValueError("invalid window count")
    return n_windows
