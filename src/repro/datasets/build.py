"""Top-level dataset construction.

``build_dataset("ukdale", seed=0)`` renders a full synthetic dataset at
its native rate and resamples it to the paper's common 1-minute
frequency. Generation is deterministic for a given ``(profile, seed)``.
"""

from __future__ import annotations

import numpy as np

from .appliances import APPLIANCES, ApplianceSpec
from .household import HouseholdSimulator
from .profiles import DatasetProfile, get_profile
from .resample import resample_dataset
from .store import SmartMeterDataset

__all__ = ["draw_balanced_ownership", "build_dataset"]


def draw_balanced_ownership(
    specs: dict[str, ApplianceSpec],
    n_houses: int,
    rng: np.random.Generator,
    min_fraction: float = 0.2,
) -> list[dict[str, bool]]:
    """Per-house ownership draws with a guaranteed class mix.

    Ownership follows each appliance's penetration, but every appliance
    is guaranteed at least ``ceil(min_fraction * n_houses)`` owners *and*
    non-owners (when ``n_houses`` allows both). Without this guarantee a
    possession-labeled dataset (IDEAL style) can come out single-class —
    e.g. every simulated house owning a dishwasher — which makes weak
    labels vacuous and detector training degenerate.
    """
    if n_houses < 1:
        raise ValueError("n_houses must be >= 1")
    ownership = {
        name: rng.random(n_houses) < spec.penetration
        for name, spec in specs.items()
    }
    floor = max(int(np.ceil(min_fraction * n_houses)), 1)
    floor = min(floor, n_houses // 2) if n_houses >= 2 else 0
    for name, owned in ownership.items():
        for target_value, count in ((True, int(owned.sum())),
                                    (False, int((~owned).sum()))):
            deficit = floor - count
            if deficit > 0:
                candidates = np.flatnonzero(owned != target_value)
                flips = rng.choice(candidates, size=deficit, replace=False)
                owned[flips] = target_value
    return [
        {name: bool(ownership[name][i]) for name in specs}
        for i in range(n_houses)
    ]


def build_dataset(
    profile: str | DatasetProfile,
    seed: int = 0,
    n_houses: int | None = None,
    days_per_house: tuple[int, int] | None = None,
    appliance_specs: dict[str, ApplianceSpec] | None = None,
    resample_to_s: float | None = 60.0,
) -> SmartMeterDataset:
    """Generate a synthetic smart-meter dataset.

    Parameters
    ----------
    profile:
        Profile name (``"ukdale"``, ``"refit"``, ``"ideal"``) or a
        custom :class:`DatasetProfile`.
    seed:
        Seed for all stochastic generation.
    n_houses, days_per_house:
        Optional overrides for quick tests and small benchmarks.
    appliance_specs:
        Appliance catalogue; defaults to the paper's five appliances.
    resample_to_s:
        Common frequency applied after generation (``None`` keeps the
        native rate). Defaults to the paper's 1 minute.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    specs = dict(appliance_specs or APPLIANCES)
    rng = np.random.default_rng(seed)
    houses = []
    count = n_houses if n_houses is not None else profile.n_houses
    if count < 1:
        raise ValueError("n_houses must be >= 1")
    day_bounds = days_per_house or profile.days_per_house
    ownership = draw_balanced_ownership(specs, count, rng)
    for i in range(count):
        simulator = HouseholdSimulator(
            house_id=f"{profile.name}_house_{i + 1}",
            appliance_specs=specs,
            step_s=profile.step_s,
            base_load_w=profile.base_load_w,
            noise_w=profile.noise_w,
            missing_rate=profile.missing_rate,
            owned=ownership[i],
        )
        n_days = int(rng.integers(day_bounds[0], day_bounds[1] + 1))
        houses.append(simulator.simulate(n_days, rng))
    dataset = SmartMeterDataset(
        name=profile.name,
        houses=houses,
        step_s=profile.step_s,
        label_source=profile.label_source,
    )
    if resample_to_s is not None and resample_to_s != profile.step_s:
        dataset = resample_dataset(dataset, resample_to_s)
    return dataset
