"""Dataset profiles emulating UK-DALE, REFIT, and IDEAL.

Each profile captures the characteristics that matter to the experiments:
house count, recording length, native sampling rate, noise level, meter
outage rate, and — crucially — the weak-label source. UK-DALE and REFIT
provide submeters, so window-level labels say "the appliance ran in this
window"; IDEAL-style labels are the household possession survey, the
weakest supervision CamAL is designed for (paper §II.A).

House counts and durations are scaled down from the real datasets
(UK-DALE: 5 houses; REFIT: 20; IDEAL: 255) to laptop-friendly sizes while
keeping their relative ordering; see DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetProfile", "PROFILES", "get_profile"]


@dataclass(frozen=True)
class DatasetProfile:
    """Generation recipe for one synthetic dataset."""

    name: str
    n_houses: int
    days_per_house: tuple[int, int]  # uniform bounds
    step_s: float
    noise_w: float
    missing_rate: float  # outages per day
    label_source: str  # "submeter" or "possession"
    base_load_w: tuple[float, float] = (60.0, 180.0)
    description: str = ""

    def __post_init__(self):
        if self.n_houses < 2:
            raise ValueError("need at least 2 houses to split train/test")
        if self.days_per_house[0] < 1 or (
            self.days_per_house[0] > self.days_per_house[1]
        ):
            raise ValueError("invalid days_per_house bounds")
        if self.label_source not in ("submeter", "possession"):
            raise ValueError(f"unknown label source {self.label_source!r}")


PROFILES: dict[str, DatasetProfile] = {
    "ukdale": DatasetProfile(
        name="ukdale",
        n_houses=5,
        days_per_house=(20, 30),
        step_s=30.0,  # near UK-DALE's 6 s mains; resampled to 1 min
        noise_w=10.0,
        missing_rate=0.08,
        label_source="submeter",
        description=(
            "UK-DALE-like: few long-recorded houses, clean submeters, "
            "native rate above 1/min (exercises the resampling step)."
        ),
    ),
    "refit": DatasetProfile(
        name="refit",
        n_houses=10,
        days_per_house=(12, 22),
        step_s=60.0,
        noise_w=25.0,
        missing_rate=0.2,
        label_source="submeter",
        base_load_w=(80.0, 260.0),
        description=(
            "REFIT-like: more houses, noisier aggregates, more meter "
            "outages."
        ),
    ),
    "ideal": DatasetProfile(
        name="ideal",
        n_houses=12,
        days_per_house=(10, 18),
        step_s=60.0,
        noise_w=18.0,
        missing_rate=0.12,
        label_source="possession",
        description=(
            "IDEAL-like: many houses, weak labels from the possession "
            "survey questionnaire instead of submeters."
        ),
    ),
}


def get_profile(name: str) -> DatasetProfile:
    """Look up a dataset profile by name, with a helpful error."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset profile {name!r}; available: "
            f"{', '.join(PROFILES)}"
        ) from None
