"""Stochastic appliance signature models.

Each appliance the paper targets (Kettle, Microwave, Dishwasher, Washing
Machine, Shower — §III) is modeled as a stochastic state machine: a daily
usage rate, a time-of-day preference (mixture of Gaussians over the day),
a duration distribution, and a power-profile generator that renders an
activation as a watt trace. These match the published characteristics of
the real UK-DALE/REFIT/IDEAL appliances (DESIGN.md §2), so the synthetic
aggregates exercise the same detection/localization difficulty spectrum:
short high spikes (kettle, shower), short cyclic bursts (microwave), and
long multi-phase cycles (dishwasher, washing machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TimeOfDayPreference",
    "ApplianceSpec",
    "render_activation",
    "simulate_appliance_day",
    "simulate_appliance",
    "APPLIANCES",
    "APPLIANCE_NAMES",
    "get_appliance_spec",
]

SECONDS_PER_DAY = 86400


@dataclass(frozen=True)
class TimeOfDayPreference:
    """Mixture of Gaussians over the 24 h clock (hours, std-hours, weight)."""

    peaks_h: tuple[float, ...]
    stds_h: tuple[float, ...]
    weights: tuple[float, ...]

    def __post_init__(self):
        if not (len(self.peaks_h) == len(self.stds_h) == len(self.weights)):
            raise ValueError("peaks, stds and weights must have equal length")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError("mixture weights must sum to 1")

    def sample_seconds(self, rng: np.random.Generator) -> float:
        """Draw a start-of-use time as seconds past midnight."""
        component = rng.choice(len(self.weights), p=np.asarray(self.weights))
        hour = rng.normal(self.peaks_h[component], self.stds_h[component])
        return float(np.clip(hour, 0.0, 23.999) * 3600.0)


@dataclass(frozen=True)
class ApplianceSpec:
    """Full stochastic description of one appliance type.

    Attributes
    ----------
    name:
        Canonical lower-case appliance name.
    uses_per_day:
        Poisson rate of activations per day.
    duration_s:
        ``(low, high)`` uniform bounds on an activation's duration.
    power_w:
        ``(low, high)`` uniform bounds on the activation's peak power.
    profile:
        Power-profile family: ``"constant"``, ``"cyclic"`` or
        ``"multi_phase"``.
    phases:
        For ``multi_phase``: tuples of ``(duration_fraction,
        power_fraction, oscillation)`` where ``oscillation`` adds a
        square-wave modulation of that relative amplitude.
    duty_cycle_s:
        For ``cyclic``: the magnetron/compressor on+off period.
    on_threshold_w:
        Watts above which the appliance counts as ON for ground-truth
        status labels (NILM convention).
    preference:
        Time-of-day usage mixture.
    penetration:
        Probability a household owns the appliance (drives the IDEAL-style
        possession labels).
    """

    name: str
    uses_per_day: float
    duration_s: tuple[float, float]
    power_w: tuple[float, float]
    profile: str = "constant"
    phases: tuple[tuple[float, float, float], ...] = field(default_factory=tuple)
    duty_cycle_s: float = 60.0
    on_threshold_w: float = 15.0
    preference: TimeOfDayPreference = field(
        default_factory=lambda: TimeOfDayPreference((12.0,), (6.0,), (1.0,))
    )
    penetration: float = 0.9

    def __post_init__(self):
        if self.profile not in ("constant", "cyclic", "multi_phase"):
            raise ValueError(f"unknown profile family {self.profile!r}")
        if self.profile == "multi_phase" and not self.phases:
            raise ValueError("multi_phase profile requires phases")
        if self.duration_s[0] <= 0 or self.duration_s[0] > self.duration_s[1]:
            raise ValueError("invalid duration bounds")
        if self.power_w[0] <= 0 or self.power_w[0] > self.power_w[1]:
            raise ValueError("invalid power bounds")


def render_activation(
    spec: ApplianceSpec, n_steps: int, step_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Render one activation as a watt trace of ``n_steps`` samples."""
    if n_steps < 1:
        raise ValueError("activation must span at least one step")
    peak = rng.uniform(*spec.power_w)
    t = np.arange(n_steps)
    if spec.profile == "constant":
        trace = np.full(n_steps, peak)
    elif spec.profile == "cyclic":
        period = max(int(round(spec.duty_cycle_s / step_s)), 2)
        duty = (t % period) < max(period // 2, 1)
        trace = np.where(duty, peak, 0.12 * peak)
    else:  # multi_phase
        trace = np.zeros(n_steps)
        start = 0
        for frac, power_frac, oscillation in spec.phases:
            span = max(int(round(frac * n_steps)), 1)
            end = min(start + span, n_steps)
            segment = np.full(end - start, peak * power_frac)
            if oscillation > 0 and end > start:
                period = max(int(round(120.0 / step_s)), 2)
                wave = ((np.arange(end - start) % period) < period // 2)
                segment = segment * (1.0 + oscillation * (wave - 0.5))
            trace[start:end] = segment
            start = end
            if start >= n_steps:
                break
        if start < n_steps:  # pad any rounding remainder with the last phase
            trace[start:] = trace[start - 1]
    # Small multiplicative jitter — real meters never read perfectly flat.
    trace = trace * rng.normal(1.0, 0.02, size=n_steps)
    return np.clip(trace, 0.0, None)


def simulate_appliance_day(
    spec: ApplianceSpec,
    steps_per_day: int,
    step_s: float,
    rng: np.random.Generator,
    rate_multiplier: float = 1.0,
) -> np.ndarray:
    """Simulate one day of an appliance's power as a watt trace.

    ``rate_multiplier`` scales the day's usage rate — weekends boost it,
    vacations zero it.
    """
    if rate_multiplier < 0:
        raise ValueError("rate_multiplier must be >= 0")
    day = np.zeros(steps_per_day)
    n_events = rng.poisson(spec.uses_per_day * rate_multiplier)
    for _ in range(n_events):
        start_s = spec.preference.sample_seconds(rng)
        start = int(start_s / step_s)
        duration_s = rng.uniform(*spec.duration_s)
        n_steps = max(int(round(duration_s / step_s)), 1)
        end = min(start + n_steps, steps_per_day)
        if end <= start:
            continue
        if np.any(day[start:end] > 0):
            continue  # appliance already running; skip overlapping event
        day[start:end] = render_activation(spec, end - start, step_s, rng)
    return day


def simulate_appliance(
    spec: ApplianceSpec,
    n_days: int,
    step_s: float,
    rng: np.random.Generator,
    rate_multipliers: np.ndarray | None = None,
) -> np.ndarray:
    """Simulate ``n_days`` of an appliance's power as one concatenated trace.

    ``rate_multipliers`` (length ``n_days``) scales each day's usage
    rate, implementing weekend/vacation behavior.
    """
    if n_days < 1:
        raise ValueError("n_days must be >= 1")
    if rate_multipliers is None:
        rate_multipliers = np.ones(n_days)
    rate_multipliers = np.asarray(rate_multipliers, dtype=np.float64)
    if rate_multipliers.shape != (n_days,):
        raise ValueError(
            f"rate_multipliers must have shape ({n_days},), "
            f"got {rate_multipliers.shape}"
        )
    steps_per_day = int(SECONDS_PER_DAY / step_s)
    days = [
        simulate_appliance_day(
            spec, steps_per_day, step_s, rng, rate_multiplier=multiplier
        )
        for multiplier in rate_multipliers
    ]
    return np.concatenate(days)


#: The five appliances DeviceScope targets (§III of the paper), with
#: parameters matching the published UK-DALE/REFIT/IDEAL characteristics.
APPLIANCES: dict[str, ApplianceSpec] = {
    "kettle": ApplianceSpec(
        name="kettle",
        uses_per_day=3.0,
        duration_s=(90, 240),
        power_w=(1800, 3000),
        profile="constant",
        on_threshold_w=200.0,
        preference=TimeOfDayPreference(
            (7.5, 13.0, 18.5), (1.0, 1.5, 2.0), (0.4, 0.25, 0.35)
        ),
        penetration=0.95,
    ),
    "microwave": ApplianceSpec(
        name="microwave",
        uses_per_day=2.0,
        duration_s=(60, 600),
        power_w=(1000, 1500),
        profile="cyclic",
        duty_cycle_s=60.0,
        on_threshold_w=100.0,
        preference=TimeOfDayPreference(
            (8.0, 12.5, 19.0), (1.0, 1.0, 1.5), (0.25, 0.35, 0.4)
        ),
        penetration=0.85,
    ),
    "dishwasher": ApplianceSpec(
        name="dishwasher",
        uses_per_day=0.9,
        duration_s=(3600, 8400),
        power_w=(1800, 2400),
        profile="multi_phase",
        # heat, circulate, heat (rinse), circulate, dry
        phases=(
            (0.2, 1.0, 0.0),
            (0.25, 0.05, 0.3),
            (0.2, 1.0, 0.0),
            (0.2, 0.05, 0.3),
            (0.15, 0.6, 0.0),
        ),
        on_threshold_w=20.0,
        preference=TimeOfDayPreference((13.0, 20.5), (2.0, 1.5), (0.4, 0.6)),
        penetration=0.65,
    ),
    "washing_machine": ApplianceSpec(
        name="washing_machine",
        uses_per_day=0.9,
        duration_s=(3600, 7200),
        power_w=(1900, 2300),
        profile="multi_phase",
        # heat, wash drum, rinse drum, spin bursts
        phases=(
            (0.25, 1.0, 0.0),
            (0.35, 0.12, 0.8),
            (0.2, 0.1, 0.8),
            (0.2, 0.3, 1.0),
        ),
        on_threshold_w=20.0,
        preference=TimeOfDayPreference((10.0, 17.0), (2.5, 2.5), (0.55, 0.45)),
        penetration=0.9,
    ),
    "shower": ApplianceSpec(
        name="shower",
        uses_per_day=1.2,
        duration_s=(240, 720),
        power_w=(7000, 9500),
        profile="constant",
        on_threshold_w=500.0,
        preference=TimeOfDayPreference((7.2, 21.5), (0.8, 1.2), (0.7, 0.3)),
        penetration=0.55,
    ),
}

APPLIANCE_NAMES: tuple[str, ...] = tuple(APPLIANCES)


def get_appliance_spec(name: str) -> ApplianceSpec:
    """Look up an appliance spec by name, with a helpful error."""
    try:
        return APPLIANCES[name]
    except KeyError:
        raise KeyError(
            f"unknown appliance {name!r}; available: {', '.join(APPLIANCES)}"
        ) from None
