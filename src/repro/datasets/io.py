"""CSV import/export of smart-meter data.

DeviceScope's GUI notes that "users could upload other datasets, as
well" (§III). This module is that path: a house round-trips through a
plain CSV (one column per channel, NaN for meter outages), and a whole
dataset through a directory of CSVs plus a JSON manifest. A single-
column CSV with just aggregate readings loads as an unlabeled house
ready for the Playground.
"""

from __future__ import annotations

import csv
import json
import math
import os
from pathlib import Path

import numpy as np

from ..robust import faults
from ..robust.retry import retriable
from ..robust.validate import validate_series
from .store import House, SmartMeterDataset

__all__ = [
    "house_to_csv",
    "house_from_csv",
    "dataset_to_dir",
    "dataset_from_dir",
]

_AGGREGATE_COLUMN = "aggregate"


@retriable(max_attempts=3, backoff=0.02, name="io.read_csv")
def _read_csv_rows(path: Path) -> tuple[list[str], list[list[float]]]:
    """Read and parse one CSV (header + float rows) with retry on
    transient I/O errors; ``io.read_csv`` is the fault site."""
    faults.checkpoint("io.read_csv")
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows = [
            [float(cell) if cell != "" else np.nan for cell in row]
            for row in reader
            if row
        ]
    return header, rows


def house_to_csv(house: House, path: str | os.PathLike) -> None:
    """Write a house's channels as CSV (aggregate first, then submeters)."""
    columns = [_AGGREGATE_COLUMN, *house.submeters]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for i in range(house.n_steps):
            row = [house.aggregate[i]]
            row.extend(house.submeters[name][i] for name in house.submeters)
            writer.writerow(
                "" if isinstance(v, float) and math.isnan(v) else repr(float(v))
                for v in row
            )


def house_from_csv(
    path: str | os.PathLike,
    house_id: str | None = None,
    step_s: float = 60.0,
    possession: dict[str, bool] | None = None,
    repair: bool = False,
) -> House:
    """Load a house from CSV written by :func:`house_to_csv` (or any CSV
    with an ``aggregate`` column; empty cells become NaN).

    Possession defaults to "owns every appliance that ever draws power".
    ``repair=True`` runs every channel through
    :func:`repro.robust.validate_series` — short NaN gaps are
    interpolated, negative readings clipped, ±inf neutralized — which is
    what a real upload path wants; the default keeps raw bytes for
    round-trip fidelity. Transient read errors are retried with backoff.
    """
    path = Path(path)
    if not path.exists():  # permanent — don't burn the retry budget
        raise FileNotFoundError(f"no such CSV: {path}")
    header, rows = _read_csv_rows(path)
    if _AGGREGATE_COLUMN not in header:
        raise ValueError(
            f"{path} has no {_AGGREGATE_COLUMN!r} column; "
            f"found {header}"
        )
    if not rows:
        raise ValueError(f"{path} has a header but no data rows")
    data = np.asarray(rows, dtype=np.float64)
    if data.shape[1] != len(header):
        raise ValueError(f"{path}: ragged rows")
    data = faults.corrupt("io.read_csv", data)
    by_name = {name: data[:, i] for i, name in enumerate(header)}
    aggregate = by_name.pop(_AGGREGATE_COLUMN)
    if repair:
        aggregate = _repair_channel(aggregate, f"{path.stem}.aggregate")
        by_name = {
            name: _repair_channel(channel, f"{path.stem}.{name}")
            for name, channel in by_name.items()
        }
    if possession is None:
        possession = {
            name: bool(np.nan_to_num(channel).max() > 0)
            for name, channel in by_name.items()
        }
    return House(
        house_id=house_id or path.stem,
        step_s=step_s,
        aggregate=aggregate,
        submeters=by_name,
        possession=possession,
    )


def _repair_channel(channel: np.ndarray, name: str) -> np.ndarray:
    """Best-effort ingestion repair; unrepairable channels stay raw
    (length must be preserved, so reject falls back to the original)."""
    repaired, _report = validate_series(channel, name=name)
    return channel if repaired is None else repaired


def dataset_to_dir(dataset: SmartMeterDataset, directory: str | os.PathLike) -> None:
    """Write one CSV per house plus a ``manifest.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "name": dataset.name,
        "step_s": dataset.step_s,
        "label_source": dataset.label_source,
        "houses": {},
    }
    for house in dataset.houses:
        filename = f"{house.house_id}.csv"
        house_to_csv(house, directory / filename)
        manifest["houses"][house.house_id] = {
            "file": filename,
            "possession": house.possession,
        }
    with open(directory / "manifest.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


@retriable(max_attempts=3, backoff=0.02, name="io.read_manifest")
def _read_manifest(manifest_path: Path) -> dict:
    faults.checkpoint("io.read_manifest")
    with open(manifest_path, encoding="utf-8") as handle:
        return json.load(handle)


def dataset_from_dir(
    directory: str | os.PathLike, repair: bool = False
) -> SmartMeterDataset:
    """Rebuild a dataset from :func:`dataset_to_dir` output.

    Manifest and per-house reads retry on transient I/O errors;
    ``repair`` is forwarded to :func:`house_from_csv`.
    """
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest.json under {directory}")
    manifest = _read_manifest(manifest_path)
    houses = []
    for house_id, entry in manifest["houses"].items():
        houses.append(
            house_from_csv(
                directory / entry["file"],
                house_id=house_id,
                step_s=float(manifest["step_s"]),
                possession={k: bool(v) for k, v in entry["possession"].items()},
                repair=repair,
            )
        )
    return SmartMeterDataset(
        name=manifest["name"],
        houses=houses,
        step_s=float(manifest["step_s"]),
        label_source=manifest["label_source"],
    )
