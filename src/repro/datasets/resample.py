"""Resampling of metered channels to a common frequency.

The paper's first preprocessing step is "we resample the datasets to a
common frequency (1 min)" (§II.A). Downsampling averages complete
blocks; any block touching a NaN stays NaN so that the downstream
"omit subsequences with missing data" rule still sees the gap.
"""

from __future__ import annotations

import numpy as np

from .store import House, SmartMeterDataset

__all__ = ["resample_mean", "resample_house", "resample_dataset"]


def resample_mean(series: np.ndarray, factor: int) -> np.ndarray:
    """Block-mean downsample by an integer ``factor``.

    Trailing samples that do not fill a block are dropped. Blocks
    containing NaN propagate NaN.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("series must be 1-D")
    if factor == 1:
        return series.copy()
    n_blocks = len(series) // factor
    if n_blocks == 0:
        raise ValueError(
            f"series of length {len(series)} too short for factor {factor}"
        )
    blocks = series[: n_blocks * factor].reshape(n_blocks, factor)
    return blocks.mean(axis=1)  # NaN-propagating by design


def resample_house(house: House, target_step_s: float) -> House:
    """Resample all of a house's channels to ``target_step_s``."""
    if target_step_s < house.step_s:
        raise ValueError(
            f"cannot upsample from {house.step_s}s to {target_step_s}s"
        )
    ratio = target_step_s / house.step_s
    factor = int(round(ratio))
    if abs(ratio - factor) > 1e-9:
        raise ValueError(
            f"target step {target_step_s}s is not an integer multiple of "
            f"native step {house.step_s}s"
        )
    return House(
        house_id=house.house_id,
        step_s=target_step_s,
        aggregate=resample_mean(house.aggregate, factor),
        submeters={
            name: resample_mean(channel, factor)
            for name, channel in house.submeters.items()
        },
        possession=dict(house.possession),
    )


def resample_dataset(
    dataset: SmartMeterDataset, target_step_s: float = 60.0
) -> SmartMeterDataset:
    """Resample every house to the paper's common 1-minute frequency."""
    if dataset.step_s == target_step_s:
        return dataset
    return SmartMeterDataset(
        name=dataset.name,
        houses=[resample_house(h, target_step_s) for h in dataset.houses],
        step_s=target_step_s,
        label_source=dataset.label_source,
    )
