"""Resampling of metered channels to a common frequency.

The paper's first preprocessing step is "we resample the datasets to a
common frequency (1 min)" (§II.A). Downsampling averages complete
blocks; any block touching a NaN stays NaN so that the downstream
"omit subsequences with missing data" rule still sees the gap.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .store import House, SmartMeterDataset

__all__ = [
    "resample_mean",
    "resample_house",
    "resample_dataset",
    "from_timestamps",
]


def from_timestamps(
    timestamps_s: np.ndarray,
    values: np.ndarray,
    step_s: float,
    start_s: float | None = None,
    n_steps: int | None = None,
) -> np.ndarray:
    """Align irregular timestamped readings onto a regular grid.

    Real meter feeds arrive with jitter, out-of-order delivery, and
    duplicate timestamps (a retransmitted reading). Each reading is
    snapped to the nearest grid slot ``round((t - start) / step)``;
    slots with no reading are NaN (the downstream missing-data rule
    sees the gap). **Duplicates resolve last-wins** in input order —
    the retransmission is the authoritative reading — instead of the
    naive scatter-add that would average or NaN-poison the row; each
    collision bumps the ``robust.duplicate_timestamps_total`` obs
    warning counter. Readings landing outside the grid are dropped and
    counted under ``robust.dropped_readings_total``.
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    timestamps_s = np.asarray(timestamps_s, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if timestamps_s.ndim != 1 or timestamps_s.shape != values.shape:
        raise ValueError("timestamps and values must be matching 1-D arrays")
    if timestamps_s.size == 0:
        raise ValueError("need at least one reading")
    order = np.argsort(timestamps_s, kind="stable")  # stable → input order
    if not np.array_equal(order, np.arange(len(order))):  # breaks ties
        obs.warning(
            "robust.unordered_timestamps_total",
            help="timestamped reads that arrived out of order",
        )
    timestamps_s = timestamps_s[order]
    values = values[order]
    if start_s is None:
        start_s = float(timestamps_s[0])
    slots = np.round((timestamps_s - start_s) / step_s).astype(np.int64)
    if n_steps is None:
        n_steps = int(slots.max()) + 1 if (slots >= 0).any() else 1
    in_range = (slots >= 0) & (slots < n_steps)
    dropped = int((~in_range).sum())
    if dropped:
        obs.warning(
            "robust.dropped_readings_total",
            help="timestamped readings outside the target grid",
        )
        if obs.enabled() and dropped > 1:
            obs.registry.counter("robust.dropped_readings_total").inc(dropped - 1)
    slots, values = slots[in_range], values[in_range]
    duplicates = len(slots) - len(np.unique(slots))
    if duplicates:
        obs.warning(
            "robust.duplicate_timestamps_total",
            help="readings snapped to an already-filled grid slot "
            "(resolved last-wins)",
        )
        if obs.enabled() and duplicates > 1:
            obs.registry.counter("robust.duplicate_timestamps_total").inc(
                duplicates - 1
            )
    grid = np.full(n_steps, np.nan)
    grid[slots] = values  # ascending stable order → last write wins
    return grid


def resample_mean(series: np.ndarray, factor: int) -> np.ndarray:
    """Block-mean downsample by an integer ``factor``.

    Trailing samples that do not fill a block are dropped. Blocks
    containing NaN propagate NaN.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("series must be 1-D")
    if factor == 1:
        return series.copy()
    n_blocks = len(series) // factor
    if n_blocks == 0:
        raise ValueError(
            f"series of length {len(series)} too short for factor {factor}"
        )
    blocks = series[: n_blocks * factor].reshape(n_blocks, factor)
    return blocks.mean(axis=1)  # NaN-propagating by design


def resample_house(house: House, target_step_s: float) -> House:
    """Resample all of a house's channels to ``target_step_s``."""
    if target_step_s < house.step_s:
        raise ValueError(
            f"cannot upsample from {house.step_s}s to {target_step_s}s"
        )
    ratio = target_step_s / house.step_s
    factor = int(round(ratio))
    if abs(ratio - factor) > 1e-9:
        raise ValueError(
            f"target step {target_step_s}s is not an integer multiple of "
            f"native step {house.step_s}s"
        )
    return House(
        house_id=house.house_id,
        step_s=target_step_s,
        aggregate=resample_mean(house.aggregate, factor),
        submeters={
            name: resample_mean(channel, factor)
            for name, channel in house.submeters.items()
        },
        possession=dict(house.possession),
    )


def resample_dataset(
    dataset: SmartMeterDataset, target_step_s: float = 60.0
) -> SmartMeterDataset:
    """Resample every house to the paper's common 1-minute frequency."""
    if dataset.step_s == target_step_s:
        return dataset
    return SmartMeterDataset(
        name=dataset.name,
        houses=[resample_house(h, target_step_s) for h in dataset.houses],
        step_s=target_step_s,
        label_source=dataset.label_source,
    )
